#include "api/subprocess.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "api/sharding.hpp"
#include "api/wire.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace rchls::api {

namespace {

// Linux resolves the running binary exactly; elsewhere the PATH
// fallback may find a different install, so non-Linux embedders should
// set SubprocessOptions::worker_command explicitly.
std::string self_executable() {
#ifdef __linux__
  std::error_code ec;
  auto p = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return p.string();
#endif
  return "rchls";
}

// POSIX single-quote escaping: robust for any path the filesystem can
// produce, including spaces.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

int default_spawn(const std::vector<std::string>& argv,
                  const std::filesystem::path& stderr_file) {
  std::string cmd;
  for (const auto& a : argv) {
    if (!cmd.empty()) cmd += " ";
    cmd += shell_quote(a);
  }
  cmd += " 2> " + shell_quote(stderr_file.string());
  int rc = std::system(cmd.c_str());
#ifndef _WIN32
  if (rc == -1) return -1;
  return WEXITSTATUS(rc);
#else
  return rc;
#endif
}

std::string tail_of(const std::filesystem::path& p) {
  std::string text;
  try {
    text = read_file(p);
  } catch (const Error&) {
    return "";
  }
  constexpr std::size_t kTail = 512;
  if (text.size() > kTail) text.erase(0, text.size() - kTail);
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

std::atomic<std::uint64_t> g_instance_counter{0};

}  // namespace

SubprocessExecutor::SubprocessExecutor(SubprocessOptions options)
    : options_(std::move(options)) {
  if (options_.shards < 1) {
    throw Error("subprocess executor needs at least one shard");
  }
#ifdef _WIN32
  // default_spawn's quoting targets POSIX sh; cmd.exe treats single
  // quotes literally, so real process spawning would silently mangle
  // every worker command line. Fail loudly instead.
  if (!options_.spawn) {
    throw Error("subprocess sharding needs a POSIX shell; provide "
                "SubprocessOptions::spawn on this platform");
  }
#endif
  if (options_.worker_command.empty()) {
    options_.worker_command = {self_executable(), "exec-request"};
  }
  std::filesystem::path base = options_.work_dir.empty()
                                   ? std::filesystem::temp_directory_path()
                                   : options_.work_dir;
  run_dir_ = base / ("rchls-exec-" + std::to_string(current_pid()) + "-" +
                     std::to_string(g_instance_counter.fetch_add(1)));
  std::error_code ec;
  std::filesystem::create_directories(run_dir_, ec);
  if (ec || !std::filesystem::is_directory(run_dir_)) {
    throw Error("cannot create worker directory '" + run_dir_.string() + "'");
  }
}

SubprocessExecutor::~SubprocessExecutor() {
  std::error_code ec;
  std::filesystem::remove_all(run_dir_, ec);
}

std::vector<Result> SubprocessExecutor::run_cells(
    const std::vector<Request>& cells) {
  std::filesystem::path dir =
      run_dir_ / ("run-" + std::to_string(next_run_++));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw Error("cannot create worker directory '" + dir.string() + "'");

  // Write every request file up front; workers only ever read them.
  std::vector<std::filesystem::path> req_files(cells.size());
  std::vector<std::filesystem::path> res_files(cells.size());
  std::vector<std::filesystem::path> err_files(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    req_files[i] = dir / ("req-" + std::to_string(i) + ".json");
    res_files[i] = dir / ("res-" + std::to_string(i) + ".json");
    err_files[i] = dir / ("err-" + std::to_string(i) + ".log");
    if (!write_file(req_files[i], wire::encode(cells[i]))) {
      throw Error("cannot write request file '" + req_files[i].string() +
                  "'");
    }
  }

  auto spawn = options_.spawn ? options_.spawn : default_spawn;
  std::vector<Result> results(cells.size());
  std::vector<std::string> errors(cells.size());

  // Static index striding: cell i runs on worker-slot i % T, results land
  // by index -- the merge order is the cell order, never completion order.
  auto drive = [&](std::size_t t, std::size_t stride) {
    for (std::size_t i = t; i < cells.size(); i += stride) {
      std::vector<std::string> argv = options_.worker_command;
      argv.push_back(req_files[i].string());
      argv.push_back(res_files[i].string());
      if (!options_.cache_dir.empty()) {
        argv.push_back("--cache-dir");
        argv.push_back(options_.cache_dir);
      }
      if (options_.jobs != 0) {
        argv.push_back("--jobs");
        argv.push_back(std::to_string(options_.jobs));
      }
      try {
        int code = spawn(argv, err_files[i]);
        if (code != 0) {
          std::string tail = tail_of(err_files[i]);
          throw Error("worker exited with code " + std::to_string(code) +
                      (tail.empty() ? "" : ": " + tail));
        }
        Result res = wire::decode_result(read_file(res_files[i]));
        if (std::string(wire::kind_of(res)) !=
            wire::kind_of(cells[i])) {
          throw Error(std::string("worker answered kind '") +
                      wire::kind_of(res) + "' for a '" +
                      wire::kind_of(cells[i]) + "' request");
        }
        results[i] = std::move(res);
      } catch (const Error& e) {
        errors[i] = e.what();
      }
    }
  };

  std::size_t threads = std::min<std::size_t>(
      static_cast<std::size_t>(options_.shards), cells.size());
  workers_launched_ += cells.size();
  if (threads <= 1) {
    drive(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back(drive, t, threads);
    }
    for (auto& th : pool) th.join();
  }

  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!errors[i].empty()) {
      throw Error("shard cell " + std::to_string(i) + " of " +
                  std::to_string(cells.size()) + " failed: " + errors[i]);
    }
  }
  std::filesystem::remove_all(dir, ec);
  return results;
}

FindDesignResult SubprocessExecutor::run(const FindDesignRequest& req) {
  return std::get<FindDesignResult>(run_cells({Request(req)}).front());
}

SweepResult SubprocessExecutor::run(const SweepRequest& req) {
  // BATCHED sharding (api/sharding.hpp): min(shards, points) child
  // requests, each a contiguous slice of the swept axis, so one worker
  // process amortizes its spawn + wire I/O over ~points/shards cells
  // and parallelizes across them with its own pool (--jobs rides
  // along). One child per cell made 12-cell sweeps ~1.8x SLOWER than
  // local -- spawn-bound.
  std::vector<Request> chunks =
      shard_sweep(req, static_cast<std::size_t>(options_.shards));
  std::vector<Result> parts = run_cells(chunks);
  return merge_sweep(req, parts);
}

GridResult SubprocessExecutor::run(const GridRequest& req) {
  // Batched like the sweep: balanced contiguous row-bounded runs of the
  // row-major cell order, merged in slice order (api/sharding.hpp).
  std::vector<Request> chunks =
      shard_grid(req, static_cast<std::size_t>(options_.shards));
  std::vector<Result> parts = run_cells(chunks);
  return merge_grid(req, parts);
}

InjectResult SubprocessExecutor::run(const InjectRequest& req) {
  return std::get<InjectResult>(run_cells({Request(req)}).front());
}

RankGatesResult SubprocessExecutor::run(const RankGatesRequest& req) {
  return std::get<RankGatesResult>(run_cells({Request(req)}).front());
}

StaResult SubprocessExecutor::run(const StaRequest& req) {
  return std::get<StaResult>(run_cells({Request(req)}).front());
}

}  // namespace rchls::api

// Typed results for every engine operation -- the output half of the
// rchls::api facade. Each request type in request.hpp has exactly one
// result type here, and api::Result is the closed variant over all of
// them (what Session's cache stores and scenario::ActionResult carries).
//
// These are the payloads the scenario::report writers render, so
// everything a JSON/CSV/table rendering needs -- including structural
// context like gate counts -- lives in the result, never in side
// channels. All fields are plain values: results are copyable,
// comparable field-by-field, and contain nothing time- or
// host-dependent, which is what lets Session serve a cached result
// byte-identical to a cold recomputation.
//
// Units follow the codebase's standard conventions: cycles for latency
// and delay, normalized area units (ripple-carry adder == 1) for area,
// mission reliability in (0, 1].
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "api/request.hpp"
#include "hls/design.hpp"
#include "hls/explore.hpp"
#include "ser/characterize.hpp"
#include "ser/fault_injection.hpp"

namespace rchls::api {

/// Result of one FindDesignRequest. When `solved`, `design` holds the
/// full synthesis result (schedule, binding, versions) and the metric
/// fields mirror design->latency/area/reliability. An infeasible bound
/// pair is NOT an error: it comes back with solved == false and the
/// engine's explanation in `no_solution_reason`.
struct FindDesignResult {
  std::string engine;
  int latency_bound = 0;
  double area_bound = 0.0;
  bool solved = false;
  std::optional<hls::Design> design;
  std::string no_solution_reason;  ///< empty when solved
};

/// Result of one SweepRequest: one SweepPoint per swept bound, in sweep
/// order (unsolved points have empty optionals).
struct SweepResult {
  SweepAxis axis = SweepAxis::kLatency;
  std::vector<hls::SweepPoint> points;
};

/// Result of one GridRequest: the full cross product in row-major
/// (latency-outer) order plus the common-cell averages.
struct GridResult {
  std::vector<hls::ComparisonRow> rows;
  hls::GridAverages averages;
};

/// Result of one InjectRequest, plus the structural context (gate count)
/// needed to interpret the sensitivity numbers.
struct InjectResult {
  std::string component;
  int width = 0;
  std::size_t gate_count = 0;   ///< all gates incl. inputs/constants
  std::size_t logic_gates = 0;  ///< strike population
  std::optional<std::uint32_t> gate;  ///< set for single-gate campaigns
  ser::InjectionResult result;
};

/// Result of one RankGatesRequest: the `top` most sensitive logic gates
/// (all of them when top == 0), most sensitive first. `kinds[i]` is the
/// gate-kind name of `gates[i]` (e.g. "xor"), kept so reports need not
/// rebuild the netlist.
struct RankGatesResult {
  std::string component;
  int width = 0;
  std::vector<ser::GateSensitivity> gates;
  std::vector<std::string> kinds;
};

/// One traced gate of a critical path, source first.
struct StaPathStep {
  std::uint32_t gate = 0;
  std::string kind;       ///< netlist gate-kind name, e.g. "Xor"
  double arrival = 0.0;   ///< traced-edge arrival at this gate
};

/// One critical path: an endpoint's worst-arrival traceback.
struct StaPath {
  std::uint32_t endpoint = 0;
  double arrival = 0.0;
  double slack = 0.0;
  std::vector<StaPathStep> steps;
};

/// One endpoint-slack histogram bin ([lo, hi], fixed bin count).
struct StaBin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

/// One row of the sensitivity-slack join, ranked by (sensitivity desc,
/// slack asc, gate asc) -- docs/timing.md's documented order.
struct StaRow {
  std::uint32_t gate = 0;
  std::string kind;
  double sensitivity = 0.0;
  double slack = 0.0;
};

/// Result of one StaRequest: the design-level timing summary, top
/// critical paths, endpoint slack histogram and the sensitivity join.
struct StaResult {
  std::string target;  ///< component name or elaborated netlist name
  int width = 0;
  std::size_t gate_count = 0;
  std::size_t logic_gates = 0;
  std::size_t levels = 0;     ///< deepest topological level
  std::size_t endpoints = 0;  ///< primary-output bits
  double clock = 0.0;         ///< effective clock (given or derived)
  double arrival_max = 0.0;
  double wns = 0.0;
  double tns = 0.0;
  std::vector<StaPath> paths;
  std::vector<StaBin> histogram;
  std::vector<StaRow> rows;
};

/// Any engine result -- the unit the result cache stores and the
/// scenario report writers dispatch over.
using Result = std::variant<FindDesignResult, SweepResult, GridResult,
                            InjectResult, RankGatesResult, StaResult>;

}  // namespace rchls::api

// api::SharedSession -- the thread-safety seam over the Session
// layering, built for the serve daemon (src/serve/server.hpp).
//
// Session (session.hpp) is deliberately single-threaded: its caches
// mutate counters on every lookup and the engines share one global
// pool. A resident server multiplexing many client connections needs
// the same memory-cache -> disk-cache -> executor stack, but with a
// concurrency contract:
//
//  * cache HITS are lock-cheap: the memory layer is a map under a
//    std::shared_mutex, so any number of threads serve popular requests
//    concurrently holding only a reader lock (counters are atomics);
//  * disk lookups serialize on their own mutex (DiskCache mutates its
//    stats and the filesystem); a disk hit is promoted to the memory
//    layer under a brief writer lock;
//  * EXECUTIONS serialize on one executor mutex. The engines already
//    parallelize internally across the process-global pool
//    (parallel::Config), so running two engine requests concurrently
//    would oversubscribe the host without speeding anything up -- and
//    serializing gives in-flight deduplication for free: a second
//    thread that misses on the same key blocks on the mutex, re-checks
//    the cache, and finds the first thread's freshly stored result
//    instead of recomputing it (tests assert executions() stays at one
//    under a concurrent identical-request hammer).
//
// Determinism and error behavior are Session's exactly: equal requests
// yield byte-identical results from every layer, infeasible bounds are
// results, structural problems throw rchls::Error, and failed
// executions are never cached. SessionOptions is reused wholesale;
// enable_cache = false degrades to "serialize every request through
// the executor" (still thread-safe, still correct).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "api/disk_cache.hpp"
#include "api/executor.hpp"
#include "api/request.hpp"
#include "api/result.hpp"
#include "api/session.hpp"
#include "parallel/config.hpp"

namespace rchls::api {

/// Where one run() call's answer came from (per-request provenance; the
/// serve daemon logs it and CI greps the warm pass for executed=0).
enum class RunSource { kMemoryCache, kDiskCache, kExecuted };

/// A consistent-enough snapshot of the counters (each counter is
/// atomic; the set is sampled without a global lock).
struct SharedSessionStats {
  std::uint64_t hits = 0;        ///< memory-layer hits
  std::uint64_t misses = 0;      ///< memory-layer misses
  std::uint64_t disk_hits = 0;
  std::uint64_t executions = 0;  ///< requests that reached the executor
  std::uint64_t entries = 0;     ///< memory-layer population
  /// Engine-pool counters (parallel::pool_stats(); process-global, so
  /// they cover every execution this session triggered -- the serve
  /// daemon prints them in its stats line and shutdown summary).
  parallel::PoolStats pool;
};

class SharedSession {
 public:
  /// Same knobs as Session (jobs writes the global parallel config,
  /// cache_dir opens the persistent layer, executor defaults to a
  /// private LocalExecutor).
  explicit SharedSession(SessionOptions options = {});

  /// Thread-safe Session::run. Any thread, any time after construction.
  Result run(const Request& req, RunSource* source = nullptr);

  SharedSessionStats stats() const;
  std::uint64_t executions() const {
    return executions_.load(std::memory_order_relaxed);
  }

 private:
  SessionOptions options_;
  std::shared_ptr<Executor> executor_;

  mutable std::shared_mutex cache_mu_;  ///< guards entries_
  std::unordered_map<std::string, Result> entries_;

  std::mutex disk_mu_;  ///< guards disk_ (stats + filesystem)
  std::unique_ptr<DiskCache> disk_;

  std::mutex exec_mu_;  ///< serializes executor runs (see header)

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> executions_{0};
};

}  // namespace rchls::api

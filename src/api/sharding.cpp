#include "api/sharding.hpp"

#include <algorithm>

#include "hls/explore.hpp"
#include "util/error.hpp"

namespace rchls::api {

namespace {

// Copies the shared context of a sharded parent onto one child cell.
template <typename RequestT>
RequestT cell_base(const RequestT& parent) {
  RequestT cell;
  cell.graph = parent.graph;
  cell.library = parent.library;
  cell.options = parent.options;
  return cell;
}

}  // namespace

std::vector<Request> shard_sweep(const SweepRequest& req, std::size_t k) {
  if (req.latency_bounds.empty() || req.area_bounds.empty()) {
    throw Error("sweep request needs at least one bound on each axis");
  }
  const std::size_t n = req.axis == SweepAxis::kLatency
                            ? req.latency_bounds.size()
                            : req.area_bounds.size();
  k = std::clamp<std::size_t>(k, 1, n);
  std::vector<Request> chunks;
  chunks.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t begin = i * n / k;
    const std::size_t end = (i + 1) * n / k;
    SweepRequest chunk = cell_base(req);
    chunk.axis = req.axis;
    if (req.axis == SweepAxis::kLatency) {
      chunk.latency_bounds.assign(req.latency_bounds.begin() + begin,
                                  req.latency_bounds.begin() + end);
      chunk.area_bounds = {req.area_bounds.front()};
    } else {
      chunk.latency_bounds = {req.latency_bounds.front()};
      chunk.area_bounds.assign(req.area_bounds.begin() + begin,
                               req.area_bounds.begin() + end);
    }
    chunks.emplace_back(std::move(chunk));
  }
  return chunks;
}

std::vector<Request> shard_grid(const GridRequest& req, std::size_t k) {
  const std::size_t per_row = req.area_bounds.size();
  const std::size_t total = req.latency_bounds.size() * per_row;
  k = std::clamp<std::size_t>(k, 1, std::max<std::size_t>(total, 1));
  std::vector<Request> chunks;
  for (std::size_t row = 0; row < req.latency_bounds.size(); ++row) {
    const std::size_t offset = row * per_row;
    std::size_t begin = 0;
    while (begin < per_row) {
      // Cut at the next balanced boundary j*total/k inside this row.
      std::size_t end = per_row;
      for (std::size_t j = 1; j < k; ++j) {
        const std::size_t cut = j * total / k;
        if (cut > offset + begin && cut < offset + per_row) {
          end = std::min(end, cut - offset);
        }
      }
      GridRequest chunk = cell_base(req);
      chunk.latency_bounds = {req.latency_bounds[row]};
      chunk.area_bounds.assign(req.area_bounds.begin() + begin,
                               req.area_bounds.begin() + end);
      chunk.baseline_versions = req.baseline_versions;
      chunks.emplace_back(std::move(chunk));
      begin = end;
    }
  }
  return chunks;
}

SweepResult merge_sweep(const SweepRequest& req, std::vector<Result>& parts) {
  SweepResult merged;
  merged.axis = req.axis;
  for (Result& r : parts) {
    auto& part = std::get<SweepResult>(r);
    merged.points.insert(merged.points.end(), part.points.begin(),
                         part.points.end());
  }
  return merged;
}

GridResult merge_grid(const GridRequest&, std::vector<Result>& parts) {
  GridResult merged;
  for (Result& r : parts) {
    auto& part = std::get<GridResult>(r);
    merged.rows.insert(merged.rows.end(), part.rows.begin(),
                       part.rows.end());
  }
  // Averages are over common cells of the WHOLE grid; recompute from the
  // merged rows with the same pure function the local path uses.
  merged.averages = hls::grid_averages(merged.rows);
  return merged;
}

}  // namespace rchls::api

#include "api/cache.hpp"

#include <sstream>
#include <variant>

#include "dfg/io.hpp"
#include "library/io.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace rchls::api {

namespace {

// Bump whenever the encoding below or any engine's result semantics
// change: a different version string changes every key, which safely
// invalidates everything (in-process today, persisted stores later).
constexpr const char* kFormatVersion = "rchls.api.v1";

void put_header(std::ostream& os, const char* kind) {
  os << kFormatVersion << "\nkind " << kind << "\n";
}

// Variable-length strings are length-framed (key N:value). Without the
// frame, adjacent fields could alias -- e.g. baseline pair ("a b", "c")
// and ("a", "b c") would both encode as "a b c" -- handing one request
// the other's cached result. With it, no two distinct field tuples
// share an encoding, which is the "equal keys iff identical results"
// half of the cache contract.
void put_str(std::ostream& os, const char* key, const std::string& v) {
  os << key << " " << v.size() << ":" << v << "\n";
}

void put_context(std::ostream& os, const dfg::Graph& g,
                 const library::ResourceLibrary& lib) {
  std::string gt = dfg::to_text(g);
  std::string lt = library::to_text(lib);
  // Block lengths frame the embedded artifacts just like put_str frames
  // scalar strings.
  os << "[graph " << gt.size() << "]\n" << gt << "[library " << lt.size()
     << "]\n" << lt;
}

void put_engine_options(std::ostream& os,
                        const hls::FindDesignOptions& options) {
  os << "scheduler "
     << (options.scheduler == hls::SchedulerKind::kDensity ? "density"
                                                           : "fds")
     << "\nconsolidation " << (options.enable_consolidation ? 1 : 0)
     << "\npolish " << (options.enable_polish ? 1 : 0) << "\nexplore "
     << options.explore_tighter_latency << "\nmax_iterations "
     << options.max_iterations << "\n";
}

void put_baseline_versions(
    std::ostream& os,
    const std::optional<std::pair<std::string, std::string>>& versions) {
  if (versions) {
    put_str(os, "baseline_adder", versions->first);
    put_str(os, "baseline_mult", versions->second);
  }
}

template <typename T>
void put_list(std::ostream& os, const char* key, const std::vector<T>& xs) {
  os << key;
  for (const T& x : xs) {
    os << " ";
    if constexpr (std::is_same_v<T, double>) {
      os << format_shortest(x);
    } else {
      os << x;
    }
  }
  os << "\n";
}

CacheKey seal(std::ostringstream& os) {
  CacheKey key;
  key.canonical = os.str();
  key.digest = fnv1a64(key.canonical);
  return key;
}

}  // namespace

CacheKey key_of(const FindDesignRequest& req) {
  std::ostringstream os;
  put_header(os, "find_design");
  put_context(os, req.graph, req.library);
  os << "latency_bound " << req.latency_bound << "\narea_bound "
     << format_shortest(req.area_bound) << "\n";
  put_str(os, "engine", req.engine);
  put_engine_options(os, req.options);
  put_baseline_versions(os, req.baseline_versions);
  return seal(os);
}

CacheKey key_of(const SweepRequest& req) {
  std::ostringstream os;
  put_header(os, "sweep");
  put_context(os, req.graph, req.library);
  os << "axis " << (req.axis == SweepAxis::kLatency ? "latency" : "area")
     << "\n";
  put_list(os, "latency_bounds", req.latency_bounds);
  put_list(os, "area_bounds", req.area_bounds);
  put_engine_options(os, req.options);
  return seal(os);
}

CacheKey key_of(const GridRequest& req) {
  std::ostringstream os;
  put_header(os, "grid");
  put_context(os, req.graph, req.library);
  put_list(os, "latency_bounds", req.latency_bounds);
  put_list(os, "area_bounds", req.area_bounds);
  put_engine_options(os, req.options);
  put_baseline_versions(os, req.baseline_versions);
  return seal(os);
}

CacheKey key_of(const InjectRequest& req) {
  std::ostringstream os;
  put_header(os, "inject");
  put_str(os, "component", req.component);
  os << "width " << req.width << "\ntrials " << req.trials << "\nseed "
     << req.seed << "\ngate ";
  if (req.gate) {
    os << *req.gate;
  } else {
    os << "all";
  }
  os << "\n";
  return seal(os);
}

CacheKey key_of(const RankGatesRequest& req) {
  std::ostringstream os;
  put_header(os, "rank_gates");
  put_str(os, "component", req.component);
  if (req.graph) {
    // Graph-shaped targets append their context; component-shaped keys
    // stay byte-identical to the pre-sta encoding.
    put_context(os, *req.graph, req.library);
    put_str(os, "versions", req.versions);
  }
  os << "width " << req.width << "\ntrials " << req.trials << "\nseed "
     << req.seed << "\ntop " << req.top << "\n";
  return seal(os);
}

CacheKey key_of(const StaRequest& req) {
  std::ostringstream os;
  put_header(os, "sta");
  put_str(os, "component", req.component);
  if (req.graph) {
    put_context(os, *req.graph, req.library);
    put_str(os, "versions", req.versions);
  }
  os << "width " << req.width << "\nclock " << format_shortest(req.clock)
     << "\ntop_paths " << req.top_paths << "\ntop " << req.top
     << "\ntrials " << req.trials << "\nseed " << req.seed << "\n";
  return seal(os);
}

CacheKey key_of(const Request& req) {
  return std::visit([](const auto& r) { return key_of(r); }, req);
}

const Result* ResultCache::find(const CacheKey& key) {
  auto it = entries_.find(key.canonical);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void ResultCache::store(const CacheKey& key, Result value) {
  entries_.insert_or_assign(key.canonical, std::move(value));
  stats_.entries = entries_.size();
}

void ResultCache::clear() {
  entries_.clear();
  stats_ = CacheStats{};
}

}  // namespace rchls::api

#include "api/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>

#include "api/disk_cache.hpp"
#include "api/session.hpp"
#include "api/subprocess.hpp"
#include "api/wire.hpp"
#include "remote/executor.hpp"
#include "benchmarks/suite.hpp"
#include "circuits/components.hpp"
#include "library/io.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "dfg/io.hpp"
#include "rtl/datapath.hpp"
#include "scenario/parse.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"
#include "workload/corpus.hpp"

namespace rchls::api {

namespace {

constexpr const char* kUsage =
    "usage:\n"
    "  rchls run <scenario.scn> [--verify-cache]\n"
    "  rchls synth <dfg-file|benchmark> --latency N --area A\n"
    "              [--engine centric|baseline|combined] [--polish]\n"
    "              [--scheduler density|fds] [--datapath]\n"
    "  rchls sweep <dfg-file|benchmark> --latency N --areas A1,A2,...\n"
    "              [--polish] [--scheduler density|fds]\n"
    "  rchls inject <component|dfg-file|benchmark> [--width W]\n"
    "               [--trials N] [--seed S] [--gate G] [--top K]\n"
    "               [--lib FILE] [--versions fastest|most_reliable]\n"
    "               (graph targets elaborate to gates first and need\n"
    "               --top; see docs/timing.md)\n"
    "  rchls sta <component|dfg-file|benchmark> [--width W] [--clock C]\n"
    "            [--lib FILE] [--versions fastest|most_reliable]\n"
    "            [--top-paths N] [--top K] [--trials N] [--seed S]\n"
    "            (static timing report + sensitivity/slack join over the\n"
    "             elaborated netlist, see docs/timing.md)\n"
    "  rchls gen <dir> [--seed S] [--count N]\n"
    "              (write a seeded workload corpus: generated .dfg/.scn\n"
    "               cases + manifest.json, see docs/workloads.md)\n"
    "  rchls cache stats|clear   (inspect / empty the persistent cache)\n"
    "  rchls cache prune --max-bytes N\n"
    "              (LRU-evict oldest entries until the cache fits)\n"
    "  rchls serve --socket PATH [--port N] [--max-queue K] [--workers W]\n"
    "              [--max-connections N] [--idle-timeout-s S]\n"
    "              (resident request daemon; serves wire envelopes over\n"
    "               the socket until SIGINT/SIGTERM, see docs/serving.md)\n"
    "  rchls request <request.json> --socket PATH | --port N\n"
    "              [--timeout-ms MS] [--retries N]\n"
    "              (send one wire request to a daemon, print the result\n"
    "               envelope; make request files with --emit-request)\n"
    "  rchls fleet status --endpoints EP1,EP2,...\n"
    "              (per-endpoint daemon counters; an endpoint is a unix\n"
    "               socket path or host:port, see docs/remote.md)\n"
    "  rchls exec-request <request.json> <result.json>\n"
    "              (execute one wire request; the worker mode behind\n"
    "               --shards, see docs/wire-protocol.md)\n"
    "  rchls bench   (list built-in benchmark graphs)\n"
    "inject components: ripple_carry_adder brent_kung_adder\n"
    "  kogge_stone_adder carry_save_multiplier leapfrog_multiplier\n"
    "global flags (all commands except bench):\n"
    "  --jobs N                  parallel workers (default: hardware\n"
    "                            concurrency)\n"
    "  --format json|csv|table   report format (default: table; sweep\n"
    "                            defaults to csv)\n"
    "  --out FILE                write the report to FILE, not stdout\n"
    "  --cache-dir DIR           persistent result cache directory\n"
    "                            (default: $RCHLS_CACHE_DIR; for `cache`:\n"
    "                            .rchls-cache)\n"
    "  --shards N                run via N exec-request worker processes\n"
    "                            (run and sweep)\n"
    "  --endpoints EP1,EP2,...   run via a fleet of rchls serve daemons\n"
    "                            (run and sweep; excludes --shards)\n"
    "  --timeout-ms MS           per-request reply deadline over sockets\n"
    "                            (request and --endpoints; 0 = forever)\n"
    "  --retries N               socket retry budget (request: same\n"
    "                            connection; --endpoints: re-dispatch to\n"
    "                            another endpoint; default 0 / 3)\n"
    "  --emit-request FILE       write the wire request envelope to FILE\n"
    "                            instead of executing (synth, sweep,\n"
    "                            inject, sta)\n"
    "exit codes: 0 success; 1 usage, parse or I/O error; 2 no solution\n"
    "  within bounds (synth only)\n"
    "scenario format reference: docs/scenario-format.md\n";

struct Args {
  std::string command;
  std::string target;   // graph spec, scenario path, component, or subverb
  std::string target2;  // exec-request only: the result file path
  std::optional<int> latency;
  std::optional<double> area;
  std::vector<double> areas;
  std::string engine = "centric";
  std::string scheduler = "density";
  bool polish = false;
  bool datapath = false;
  bool verify_cache = false;
  int width = 16;
  std::size_t trials = 64 * 256;
  std::uint64_t seed = 1;
  std::size_t count = 100;  // gen: corpus case count
  std::optional<std::uint32_t> gate;
  int top = 0;
  int top_paths = 3;           // sta: critical paths to trace
  double clock = 0.0;          // sta: 0 = derived from the longest path
  std::string versions = "fastest";  // sta/inject graph targets
  std::string lib;             // sta/inject graph targets: library file
  std::size_t jobs = 0;  // 0 = hardware concurrency
  int shards = 0;        // 0 = in-process LocalExecutor
  std::string cache_dir;  // empty = $RCHLS_CACHE_DIR, then none
  std::string format;    // empty = per-command default
  std::string out;
  std::string emit_request;  // write the wire request here, don't run
  std::string socket_path;   // serve/request: unix-domain socket
  std::optional<int> port;   // serve/request: 127.0.0.1 TCP port
  std::size_t max_queue = 64;
  std::size_t workers = 2;
  std::size_t max_connections = 0;  // serve: 0 = unlimited
  int idle_timeout_s = 0;           // serve: 0 = never reap
  std::string endpoints;            // run/sweep/fleet: daemon fleet
  int timeout_ms = 0;               // request/fleet deadline, 0 = forever
  int retries = -1;                 // -1 = per-command default (0 / 3)
  std::optional<std::uint64_t> max_bytes;  // cache prune budget
};

// One diagnostic convention for every failure path (tested by
// tests/api_cli_test.cpp): a single "error: ..." line on the error
// stream, exit code 1.
int fail(std::ostream& err, const std::string& msg) {
  err << "error: " << msg << "\n";
  return 1;
}

// Argument errors additionally print the usage text.
int fail_usage(std::ostream& err, const std::string& msg) {
  fail(err, msg);
  err << kUsage;
  return 1;
}

int to_int(const std::string& flag, const std::string& tok) {
  auto v = try_parse_int(tok);
  if (!v) throw Error(flag + " expects an integer (got '" + tok + "')");
  return *v;
}

// Full 64-bit range for counters like --seed and --trials, which the
// engines take as uint64/size_t (to_int would reject anything past
// 2^31-1).
std::uint64_t to_uint64(const std::string& flag, const std::string& tok) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    throw Error(flag + " expects a non-negative integer (got '" + tok +
                "')");
  }
  return v;
}

double to_double(const std::string& flag, const std::string& tok) {
  auto v = try_parse_double(tok);
  if (!v) throw Error(flag + " expects a number (got '" + tok + "')");
  return *v;
}

// Which subcommands each flag applies to; anything else is rejected
// up front with the same "error: ..." contract as unknown flags, so a
// misplaced flag can never be silently ignored.
const std::map<std::string, std::vector<std::string>, std::less<>>&
flag_commands() {
  static const std::map<std::string, std::vector<std::string>, std::less<>>
      table = {
          {"--latency", {"synth", "sweep"}},
          {"--area", {"synth"}},
          {"--areas", {"sweep"}},
          {"--engine", {"synth"}},
          {"--scheduler", {"synth", "sweep"}},
          {"--polish", {"synth", "sweep"}},
          {"--datapath", {"synth"}},
          {"--width", {"inject", "sta"}},
          {"--trials", {"inject", "sta"}},
          {"--seed", {"inject", "sta", "gen"}},
          {"--count", {"gen"}},
          {"--gate", {"inject"}},
          {"--top", {"inject", "sta"}},
          {"--top-paths", {"sta"}},
          {"--clock", {"sta"}},
          {"--versions", {"inject", "sta"}},
          {"--lib", {"inject", "sta"}},
          {"--verify-cache", {"run"}},
          {"--jobs",
           {"run", "synth", "sweep", "inject", "sta", "exec-request",
            "serve"}},
          {"--format", {"run", "synth", "sweep", "inject", "sta"}},
          {"--out", {"run", "synth", "sweep", "inject", "sta", "request"}},
          {"--cache-dir",
           {"run", "synth", "sweep", "inject", "sta", "cache",
            "exec-request", "serve"}},
          {"--shards", {"run", "sweep", "sta"}},
          {"--emit-request", {"synth", "sweep", "inject", "sta"}},
          {"--socket", {"serve", "request"}},
          {"--port", {"serve", "request"}},
          {"--max-queue", {"serve"}},
          {"--workers", {"serve"}},
          {"--max-connections", {"serve"}},
          {"--idle-timeout-s", {"serve"}},
          {"--endpoints", {"run", "sweep", "sta", "fleet"}},
          {"--timeout-ms", {"request", "run", "sweep", "sta", "fleet"}},
          {"--retries", {"request", "run", "sweep", "sta", "fleet"}},
          {"--max-bytes", {"cache"}},
      };
  return table;
}

// Throws Error (reported as a usage failure by cli_main) instead of
// returning a partial Args; keeps every malformed flag on the same
// "error: ..." + usage path.
Args parse_args(const std::vector<std::string>& args) {
  Args a;
  a.command = args.front();
  std::size_t i = 1;
  if (a.command != "bench" && a.command != "serve") {
    if (args.size() < 2 || starts_with(args[1], "--")) {
      throw Error("'" + a.command + "' needs a positional argument");
    }
    a.target = args[1];
    i = 2;
    if (a.command == "exec-request") {
      if (args.size() < 3 || starts_with(args[2], "--")) {
        throw Error("exec-request needs <request.json> <result.json>");
      }
      a.target2 = args[2];
      i = 3;
    }
  }
  for (; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw Error(flag + " expects a value");
      }
      return args[++i];
    };
    auto allowed = flag_commands().find(flag);
    if (allowed == flag_commands().end()) {
      throw Error("unknown flag '" + flag + "'");
    }
    if (std::find(allowed->second.begin(), allowed->second.end(),
                  a.command) == allowed->second.end()) {
      throw Error(flag + " does not apply to 'rchls " + a.command + "'");
    }
    if (flag == "--latency") {
      a.latency = to_int(flag, next());
    } else if (flag == "--area") {
      a.area = to_double(flag, next());
    } else if (flag == "--areas") {
      for (const auto& tok : split(next(), ',')) {
        a.areas.push_back(to_double(flag, tok));
      }
    } else if (flag == "--engine") {
      a.engine = next();
    } else if (flag == "--scheduler") {
      a.scheduler = next();
    } else if (flag == "--jobs") {
      int jobs = to_int(flag, next());
      if (jobs < 1) throw Error("--jobs needs a positive worker count");
      a.jobs = static_cast<std::size_t>(jobs);
    } else if (flag == "--width") {
      a.width = to_int(flag, next());
    } else if (flag == "--trials") {
      std::uint64_t t = to_uint64(flag, next());
      if (t < 1) throw Error("--trials needs a positive count");
      a.trials = static_cast<std::size_t>(t);
    } else if (flag == "--seed") {
      a.seed = to_uint64(flag, next());
    } else if (flag == "--count") {
      std::uint64_t n = to_uint64(flag, next());
      if (n < 1) throw Error("--count needs a positive case count");
      a.count = static_cast<std::size_t>(n);
    } else if (flag == "--gate") {
      std::uint64_t g = to_uint64(flag, next());
      if (g > std::numeric_limits<std::uint32_t>::max()) {
        throw Error("--gate id is out of range");
      }
      a.gate = static_cast<std::uint32_t>(g);
    } else if (flag == "--top") {
      a.top = to_int(flag, next());
      if (a.top < 0) throw Error("--top needs a non-negative count");
    } else if (flag == "--top-paths") {
      a.top_paths = to_int(flag, next());
      if (a.top_paths < 0) {
        throw Error("--top-paths needs a non-negative count");
      }
    } else if (flag == "--clock") {
      a.clock = to_double(flag, next());
      if (a.clock < 0) throw Error("--clock cannot be negative");
    } else if (flag == "--versions") {
      a.versions = next();
      if (a.versions != "fastest" && a.versions != "most_reliable") {
        throw Error("--versions must be fastest or most_reliable (got '" +
                    a.versions + "')");
      }
    } else if (flag == "--lib") {
      a.lib = next();
      if (a.lib.empty()) throw Error("--lib needs a non-empty file path");
    } else if (flag == "--shards") {
      a.shards = to_int(flag, next());
      if (a.shards < 1) throw Error("--shards needs a positive count");
    } else if (flag == "--cache-dir") {
      a.cache_dir = next();
      if (a.cache_dir.empty()) {
        throw Error("--cache-dir needs a non-empty directory");
      }
    } else if (flag == "--format") {
      const std::string& v = next();
      if (v != "json" && v != "csv" && v != "table") {
        throw Error("--format must be json, csv or table (got '" + v +
                    "')");
      }
      a.format = v;
    } else if (flag == "--out") {
      a.out = next();
    } else if (flag == "--emit-request") {
      a.emit_request = next();
      if (a.emit_request.empty()) {
        throw Error("--emit-request needs a non-empty file path");
      }
    } else if (flag == "--socket") {
      a.socket_path = next();
      if (a.socket_path.empty()) {
        throw Error("--socket needs a non-empty path");
      }
    } else if (flag == "--port") {
      int port = to_int(flag, next());
      if (port < 0 || port > 65535) {
        throw Error("--port must be in [0, 65535] (0 = ephemeral)");
      }
      a.port = port;
    } else if (flag == "--max-queue") {
      int q = to_int(flag, next());
      if (q < 1) throw Error("--max-queue needs a positive count");
      a.max_queue = static_cast<std::size_t>(q);
    } else if (flag == "--max-connections") {
      int c = to_int(flag, next());
      if (c < 1) throw Error("--max-connections needs a positive count");
      a.max_connections = static_cast<std::size_t>(c);
    } else if (flag == "--idle-timeout-s") {
      a.idle_timeout_s = to_int(flag, next());
      if (a.idle_timeout_s < 1) {
        throw Error("--idle-timeout-s needs a positive second count");
      }
    } else if (flag == "--endpoints") {
      a.endpoints = next();
      if (a.endpoints.empty()) {
        throw Error("--endpoints needs a comma-separated endpoint list");
      }
    } else if (flag == "--timeout-ms") {
      a.timeout_ms = to_int(flag, next());
      if (a.timeout_ms < 0) throw Error("--timeout-ms cannot be negative");
    } else if (flag == "--retries") {
      a.retries = to_int(flag, next());
      if (a.retries < 0) throw Error("--retries cannot be negative");
    } else if (flag == "--workers") {
      int w = to_int(flag, next());
      if (w < 1) throw Error("--workers needs a positive count");
      a.workers = static_cast<std::size_t>(w);
    } else if (flag == "--max-bytes") {
      a.max_bytes = to_uint64(flag, next());
    } else if (flag == "--polish") {
      a.polish = true;
    } else if (flag == "--datapath") {
      a.datapath = true;
    } else {  // "--verify-cache" (the table rejected everything else)
      a.verify_cache = true;
    }
  }
  if (a.format.empty()) a.format = a.command == "sweep" ? "csv" : "table";
  if (a.datapath && a.format != "table") {
    throw Error("--datapath requires --format table");
  }
  if (a.shards > 0 && !a.endpoints.empty()) {
    throw Error("--shards and --endpoints are different executors; "
                "choose one");
  }
  return a;
}

// --lib FILE overrides the paper library for graph-shaped sta/inject
// targets (the file may carry `timing` directives, see docs/timing.md).
library::ResourceLibrary load_library(const Args& a) {
  if (a.lib.empty()) return library::paper_library();
  std::ifstream in(a.lib);
  if (!in) throw Error("cannot open library file '" + a.lib + "'");
  return library::parse(in);
}

dfg::Graph load_graph(const std::string& spec) {
  for (const auto& name : benchmarks::all_names()) {
    if (name == spec) return benchmarks::by_name(spec);
  }
  std::ifstream in(spec);
  if (!in) {
    throw Error("cannot open '" + spec + "' (and it is not a built-in "
                "benchmark name)");
  }
  return dfg::parse(in);
}

std::string render(const scenario::RunReport& report,
                   const std::string& format) {
  if (format == "json") return scenario::report::to_json(report);
  if (format == "csv") return scenario::report::to_csv(report);
  return scenario::report::to_table(report);
}

// Delivers a rendered report to stdout or --out FILE.
int emit(const std::string& rendered, const Args& a, std::ostream& out) {
  if (a.out.empty()) {
    out << rendered;
    return 0;
  }
  std::ofstream file(a.out);
  if (!file) throw Error("cannot open output file '" + a.out + "'");
  file << rendered;
  file.flush();
  if (!file) throw Error("failed writing output file '" + a.out + "'");
  return 0;
}

// --emit-request: the wire envelope is the product; nothing executes.
// Composes with `rchls request` / `rchls exec-request`, which consume
// these files.
bool emit_request_file(const Args& a, const Request& req) {
  if (a.emit_request.empty()) return false;
  if (!write_file(a.emit_request, wire::encode(req))) {
    throw Error("cannot write request file '" + a.emit_request + "'");
  }
  return true;
}

hls::FindDesignOptions engine_options(const Args& a) {
  hls::FindDesignOptions fd;
  fd.enable_polish = a.polish;
  if (a.scheduler == "fds") {
    fd.scheduler = hls::SchedulerKind::kForceDirected;
  } else if (a.scheduler != "density") {
    throw Error("unknown scheduler '" + a.scheduler +
                "' (expected density or fds)");
  }
  return fd;
}

// The one-shot commands wrap their single result in a RunReport whose
// scenario name and action label equal the command name. That makes
// `rchls synth ... --format json` byte-identical to `rchls run` on the
// equivalent one-action scenario (`scenario synth` + `find_design ...
// label=synth`) -- the shared-writer guarantee tests/api_cli_test.cpp
// pins.
scenario::RunReport one_shot_report(const std::string& command,
                                    std::optional<dfg::Graph> graph,
                                    library::ResourceLibrary lib) {
  scenario::RunReport report;
  report.scenario_name = command;
  report.graph = std::move(graph);
  report.library = std::move(lib);
  return report;
}

int run_synth(const Args& a, Session& session, std::ostream& out,
              std::ostream& err) {
  if (!a.latency || !a.area) {
    throw Error("synth needs --latency and --area");
  }
  FindDesignRequest req;
  req.graph = load_graph(a.target);
  req.library = library::paper_library();
  req.latency_bound = *a.latency;
  req.area_bound = *a.area;
  req.engine = a.engine;
  req.options = engine_options(a);
  if (emit_request_file(a, Request(req))) return 0;

  FindDesignResult r = session.run(req);
  if (!r.solved) {
    err << "error: no solution: " << r.no_solution_reason << "\n";
    return 2;
  }

  std::string datapath;
  if (a.datapath) {  // parse_args enforced --format table
    datapath = "\n" + rtl::to_string(
        rtl::build_datapath(*r.design, req.graph, req.library), req.graph);
  }

  scenario::RunReport report =
      one_shot_report("synth", req.graph, req.library);
  report.actions.push_back({"synth", 0, std::move(r)});
  return emit(render(report, a.format) + datapath, a, out);
}

int run_sweep(const Args& a, Session& session, std::ostream& out) {
  if (!a.latency || a.areas.empty()) {
    throw Error("sweep needs --latency and --areas");
  }
  SweepRequest req;
  req.graph = load_graph(a.target);
  req.library = library::paper_library();
  req.axis = SweepAxis::kArea;
  req.latency_bounds = {*a.latency};
  req.area_bounds = a.areas;
  req.options = engine_options(a);
  if (emit_request_file(a, Request(req))) return 0;

  SweepResult r = session.run(req);
  scenario::RunReport report =
      one_shot_report("sweep", req.graph, req.library);
  report.actions.push_back({"sweep", 0, std::move(r)});
  return emit(render(report, a.format), a, out);
}

int run_inject(const Args& a, Session& session, std::ostream& out) {
  if (a.width < 1) throw Error("inject needs a positive --width");

  if (!circuits::is_component(a.target)) {
    // Graph target: elaborate under the version policy and rank its
    // gates (the whole-campaign InjectRequest stays component-only, so
    // the ranking IS the report here and --top is required).
    if (a.top < 1) {
      throw Error("inject on a graph target needs --top (the elaborated "
                  "netlist is reported through rank_gates)");
    }
    if (a.gate) {
      throw Error("--gate applies to components, not graph targets");
    }
    RankGatesRequest rank;
    rank.graph = load_graph(a.target);
    rank.library = load_library(a);
    rank.versions = a.versions;
    rank.width = a.width;
    rank.trials = a.trials;
    rank.seed = a.seed;
    rank.top = a.top;
    if (emit_request_file(a, Request(rank))) return 0;
    scenario::RunReport report =
        one_shot_report("inject", rank.graph, rank.library);
    report.actions.push_back({"rank_gates", 0, session.run(rank)});
    return emit(render(report, a.format), a, out);
  }

  InjectRequest req;
  req.component = a.target;
  req.width = a.width;
  req.trials = a.trials;
  req.seed = a.seed;
  req.gate = a.gate;
  if (!a.emit_request.empty() && a.top > 0) {
    throw Error("--emit-request emits one request; drop --top");
  }
  if (emit_request_file(a, Request(req))) return 0;

  // A graphless report defaults to the paper library, exactly like a
  // campaign-only scenario file.
  scenario::RunReport report =
      one_shot_report("inject", std::nullopt, library::paper_library());
  report.actions.push_back({"inject", 0, session.run(req)});

  if (a.top > 0) {
    RankGatesRequest rank;
    rank.component = a.target;
    rank.width = a.width;
    rank.trials = a.trials;
    rank.seed = a.seed;
    rank.top = a.top;
    report.actions.push_back({"rank_gates", 0, session.run(rank)});
  }
  return emit(render(report, a.format), a, out);
}

int run_sta(const Args& a, Session& session, std::ostream& out) {
  if (a.width < 1) throw Error("sta needs a positive --width");

  StaRequest req;
  if (circuits::is_component(a.target)) {
    // Component targets carry no context (the request's library stays
    // empty, matching the wire/cache encoding); the report defaults to
    // the paper library like any graphless scenario.
    req.component = a.target;
  } else {
    req.graph = load_graph(a.target);
    req.library = load_library(a);
    req.versions = a.versions;
  }
  req.width = a.width;
  req.clock = a.clock;
  req.top_paths = a.top_paths;
  req.top = a.top;
  req.trials = a.trials;
  req.seed = a.seed;
  if (emit_request_file(a, Request(req))) return 0;

  scenario::RunReport report = one_shot_report(
      "sta", req.graph,
      req.graph ? req.library : library::paper_library());
  report.actions.push_back({"sta", 0, session.run(req)});
  return emit(render(report, a.format), a, out);
}

int run_scenario(const Args& a, Session& session, std::ostream& out,
                 std::ostream& err) {
  scenario::Scenario scn = scenario::parse_file(a.target);
  scenario::RunReport report = scenario::run(scn, session);

  if (a.verify_cache) {
    // Cache-correctness check (CI runs this over every shipped
    // scenario): a second pass through the same session must be served
    // entirely from cache and render byte-identically.
    CacheStats cold = session.cache_stats();
    scenario::RunReport warm = scenario::run(scn, session);
    CacheStats stats = session.cache_stats();
    if (scenario::report::to_json(warm) !=
        scenario::report::to_json(report)) {
      return fail(err, "cache verification failed: warm-run report "
                       "differs from the cold run");
    }
    if (stats.misses != cold.misses ||
        stats.hits != cold.hits + scn.actions.size()) {
      return fail(err, "cache verification failed: " +
                           std::to_string(stats.misses - cold.misses) +
                           " of " + std::to_string(scn.actions.size()) +
                           " warm-run actions were recomputed");
    }
    // The stats ride along so CI logs show WHAT was verified, not just
    // that verification passed.
    err << "cache: verified " << scn.actions.size()
        << " actions served from cache, reports byte-identical"
        << " (hits=" << stats.hits << " misses=" << stats.misses
        << " entries=" << stats.entries << ")\n";
  }
  return emit(render(report, a.format), a, out);
}

// `rchls gen`: the workload corpus as a subcommand. Deterministic by
// the generate_corpus contract (workload/corpus.hpp): re-running with
// the same --seed/--count overwrites every file with identical bytes.
int run_gen(const Args& a, std::ostream& out) {
  workload::CorpusConfig cfg;
  cfg.seed = a.seed;
  cfg.count = a.count;
  std::size_t files = workload::write_corpus(cfg, a.target);
  out << "gen: wrote " << files << " files (" << cfg.count
      << " cases) to " << a.target << " (seed=" << cfg.seed << ")\n";
  return 0;
}

int run_bench(std::ostream& out) {
  for (const auto& name : benchmarks::all_names()) {
    auto g = benchmarks::by_name(name);
    out << name << ": " << g.node_count() << " ops ("
        << g.count_ops(dfg::OpType::kMul) << " mul)\n";
  }
  return 0;
}

// --cache-dir wins, then $RCHLS_CACHE_DIR; the `cache` subcommand
// additionally defaults to the conventional .rchls-cache so
// `rchls cache stats` works bare. Engine commands default to NO disk
// cache -- persisting results is an explicit opt-in.
std::string resolved_cache_dir(const Args& a) {
  if (!a.cache_dir.empty()) return a.cache_dir;
  if (const char* env = std::getenv("RCHLS_CACHE_DIR")) {
    if (*env != '\0') return env;
  }
  return a.command == "cache" ? ".rchls-cache" : "";
}

int run_cache(const Args& a, std::ostream& out) {
  std::string dir = resolved_cache_dir(a);
  if (a.target == "stats") {
    DiskCacheUsage u;
    // Don't create the directory just to report that it is empty.
    if (std::filesystem::is_directory(dir)) u = DiskCache(dir).usage();
    out << "cache directory: " << dir << "\n"
        << "entries: " << u.entries << "\n"
        << "bytes: " << u.bytes << "\n";
    return 0;
  }
  if (a.target == "clear") {
    std::uint64_t removed = 0;
    if (std::filesystem::is_directory(dir)) removed = DiskCache(dir).clear();
    out << "cache directory: " << dir << "\n"
        << "removed: " << removed << "\n";
    return 0;
  }
  if (a.target == "prune") {
    if (!a.max_bytes) throw Error("cache prune needs --max-bytes");
    DiskCache::PruneReport r;
    if (std::filesystem::is_directory(dir)) {
      r = DiskCache(dir).prune(*a.max_bytes);
    }
    out << "cache directory: " << dir << "\n"
        << "removed: " << r.removed_entries << " (" << r.removed_bytes
        << " bytes)\n"
        << "kept: " << r.kept_entries << " (" << r.kept_bytes
        << " bytes)\n";
    return 0;
  }
  throw Error("cache expects 'stats', 'clear' or 'prune' (got '" + a.target +
              "')");
}

// Signal-driven daemon lifetime: the handler only flips a flag; the
// main loop notices and runs the orderly Server::stop(). sig_atomic_t
// is the only thing a signal handler may touch portably.
volatile std::sig_atomic_t g_serve_signal = 0;

extern "C" void serve_signal_handler(int) { g_serve_signal = 1; }

int run_serve(const Args& a, std::ostream& err) {
  if (a.socket_path.empty() && !a.port) {
    throw Error("serve needs --socket PATH and/or --port N");
  }
  serve::ServerOptions so;
  so.socket_path = a.socket_path;
  so.tcp_port = a.port ? *a.port : -1;
  so.max_queue = a.max_queue;
  so.workers = a.workers;
  so.max_connections = a.max_connections;
  so.idle_timeout_s = a.idle_timeout_s;
  so.session.jobs = a.jobs;
  so.session.cache_dir = resolved_cache_dir(a);
  so.log = &err;
  serve::Server server(std::move(so));

  err << "serve: listening";
  if (!server.socket_path().empty()) {
    err << " unix:" << server.socket_path();
  }
  if (server.tcp_port() != 0) err << " tcp:127.0.0.1:" << server.tcp_port();
  err << " workers=" << a.workers << " max-queue=" << a.max_queue;
  if (a.max_connections > 0) err << " max-connections=" << a.max_connections;
  if (a.idle_timeout_s > 0) err << " idle-timeout-s=" << a.idle_timeout_s;
  if (!resolved_cache_dir(a).empty()) {
    err << " cache-dir=" << resolved_cache_dir(a);
  }
  err << "\n" << std::flush;

  g_serve_signal = 0;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (g_serve_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  server.stop();

  serve::ServeStats s = server.stats();
  api::SharedSessionStats ss = server.session_stats();
  err << "serve: stopped connections=" << s.connections
      << " refused=" << s.refused_connections
      << " idle_reaped=" << s.idle_reaped
      << " requests=" << s.requests << " errors=" << s.errors
      << " overflows=" << s.overflows << " hits=" << ss.hits
      << " disk_hits=" << ss.disk_hits << " executed=" << ss.executions
      << "\n";
  err << "serve: pool tasks=" << ss.pool.tasks_executed
      << " steals=" << ss.pool.steals
      << " overflow=" << ss.pool.overflow_pushes
      << " blocks=" << ss.pool.block_handoffs
      << " wakeups=" << ss.pool.idle_wakeups << "\n";
  return 0;
}

// `rchls request`: the thin client. Reads a wire request file (made
// with --emit-request or by hand), round-trips it through a daemon,
// and emits the raw reply envelope -- result or error -- verbatim, so
// the output composes with anything that reads wire files.
int run_request(const Args& a, std::ostream& out, std::ostream& err) {
  if (a.socket_path.empty() == !a.port) {
    throw Error("request needs exactly one of --socket or --port");
  }
  std::string payload = read_file(a.target);
  serve::ClientOptions copts;
  copts.timeout_ms = a.timeout_ms;
  copts.retries = a.retries >= 0 ? a.retries : 0;
  serve::Client client =
      a.socket_path.empty()
          ? serve::Client::connect_tcp(*a.port, copts)
          : serve::Client::connect_unix(a.socket_path, copts);
  std::string reply = client.call_raw(payload);
  serve::Reply decoded = serve::decode_reply(reply);
  if (!decoded.ok()) return fail(err, "serve: " + decoded.error);
  return emit(reply, a, out);
}

// `rchls fleet status`: one line of daemon counters per endpoint, over
// fresh connections (kind:"stats" envelope). Exit 0 as long as the
// endpoints could be PARSED -- a down endpoint prints as down; scripts
// that care grep for it.
int run_fleet(const Args& a, std::ostream& out) {
  if (a.target != "status") {
    throw Error("fleet expects 'status' (got '" + a.target + "')");
  }
  if (a.endpoints.empty()) {
    throw Error("fleet status needs --endpoints EP1,EP2,...");
  }
  remote::FleetOptions fo;
  fo.endpoints = remote::parse_endpoints(a.endpoints);
  fo.timeout_ms = a.timeout_ms;
  fo.retries = 0;  // status probes answer for exactly one endpoint each
  remote::Fleet fleet(std::move(fo));

  std::vector<std::optional<serve::DaemonStats>> stats =
      fleet.probe_stats();
  std::vector<remote::EndpointStats> specs = fleet.stats();
  out << "fleet: " << stats.size() << " endpoints\n";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const std::string& spec = specs[i].spec;
    if (!stats[i]) {
      out << "endpoint " << spec << ": down\n";
      continue;
    }
    const serve::DaemonStats& d = *stats[i];
    out << "endpoint " << spec << ": up requests=" << d.requests
        << " errors=" << d.errors << " overflows=" << d.overflows
        << " connections=" << d.connections
        << " active=" << d.active_connections
        << " refused=" << d.refused_connections
        << " idle_reaped=" << d.idle_reaped << " hits=" << d.hits
        << " disk_hits=" << d.disk_hits << " executed=" << d.executions
        << " entries=" << d.entries << "\n";
  }
  return 0;
}

// The worker mode behind SubprocessExecutor: one wire request in, one
// wire result out. Shares the persistent cache when --cache-dir is
// given, so repeated shard cells are disk hits even across sweeps.
int run_exec_request(const Args& a, Session& session) {
  Request req = wire::decode_request(read_file(a.target));
  Result res = session.run(req);
  if (!write_file(a.target2, wire::encode(res))) {
    throw Error("cannot write result file '" + a.target2 + "'");
  }
  return 0;
}

}  // namespace

int cli_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.empty()) return fail_usage(err, "missing command");
  const std::string& command = args.front();
  if (command != "run" && command != "synth" && command != "sweep" &&
      command != "inject" && command != "sta" && command != "bench" &&
      command != "cache" && command != "exec-request" &&
      command != "serve" && command != "request" && command != "gen" &&
      command != "fleet") {
    return fail_usage(err, "unknown command '" + command + "'");
  }

  Args a;
  try {
    a = parse_args(args);
  } catch (const Error& e) {
    return fail_usage(err, e.what());
  }

  try {
    if (a.command == "bench") return run_bench(out);
    if (a.command == "gen") return run_gen(a, out);
    if (a.command == "cache") return run_cache(a, out);
    if (a.command == "serve") return run_serve(a, err);
    if (a.command == "request") return run_request(a, out, err);
    if (a.command == "fleet") return run_fleet(a, out);

    SessionOptions opts;
    opts.jobs = a.jobs;
    opts.cache_dir = resolved_cache_dir(a);
    std::shared_ptr<remote::RemoteExecutor> remote_exec;
    if (a.shards > 0) {
      SubprocessOptions so;
      so.shards = a.shards;
      so.cache_dir = opts.cache_dir;
      so.jobs = a.jobs;  // workers inherit the user's --jobs cap
      opts.executor = std::make_shared<SubprocessExecutor>(so);
    } else if (!a.endpoints.empty()) {
      remote::RemoteOptions ro;
      ro.fleet.endpoints = remote::parse_endpoints(a.endpoints);
      ro.fleet.timeout_ms = a.timeout_ms;
      ro.fleet.retries = a.retries >= 0 ? a.retries : 3;
      remote_exec = std::make_shared<remote::RemoteExecutor>(std::move(ro));
      opts.executor = remote_exec;
    }
    Session session(opts);

    int code = 0;
    if (a.command == "run") {
      code = run_scenario(a, session, out, err);
    } else if (a.command == "synth") {
      code = run_synth(a, session, out, err);
    } else if (a.command == "sweep") {
      code = run_sweep(a, session, out);
    } else if (a.command == "inject") {
      code = run_inject(a, session, out);
    } else if (a.command == "sta") {
      code = run_sta(a, session, out);
    } else {
      return run_exec_request(a, session);
    }
    if (!opts.cache_dir.empty()) {
      // One machine-greppable summary of the persistent layer (CI's
      // cross-process warm-cache job asserts disk_misses=0 executed=0
      // on a second invocation). Stderr, so reports stay byte-stable.
      const DiskCacheStats& ds = session.disk_stats();
      err << "cache: dir=" << opts.cache_dir << " disk_hits=" << ds.hits
          << " disk_misses=" << ds.misses << " stores=" << ds.stores
          << " executed=" << session.executions() << "\n";
    }
    if (remote_exec) {
      // Per-endpoint dispatch accounting, same stderr-summary idiom as
      // the cache and serve lines (CI greps fallbacks=0 on the healthy
      // multi-daemon job).
      for (const auto& es : remote_exec->fleet().stats()) {
        err << "fleet: endpoint " << es.spec
            << " dispatched=" << es.dispatched
            << " completed=" << es.completed << " failed=" << es.failed
            << " quarantined=" << (es.quarantined ? 1 : 0)
            << " latency_ms=" << static_cast<std::uint64_t>(es.latency_ms)
            << "\n";
      }
      err << "fleet: local_fallbacks=" << remote_exec->local_fallbacks()
          << "\n";
    }
    return code;
  } catch (const Error& e) {
    return fail(err, e.what());
  }
}

}  // namespace rchls::api

// Balanced request slicing -- the one slicing policy every sharding
// executor shares.
//
// Sweep and Grid requests are embarrassingly cell-parallel, so both the
// process-level SubprocessExecutor (api/subprocess.hpp) and the
// network-level remote::RemoteExecutor (remote/executor.hpp) split them
// into child requests and merge the child results back. Byte-identity
// with LocalExecutor rests on ONE invariant, so the slicing and merging
// live here, used by both:
//
//  * slices are balanced CONTIGUOUS runs of the cell order (grid slices
//    never cross a row boundary), produced purely from (request, k);
//  * merging concatenates slice results in slice order, so the merged
//    cell order is exactly the unsharded order; grid averages are
//    recomputed from the merged rows with hls::grid_averages, the same
//    pure function the local path uses.
//
// Because every cell is computed independently of its neighbors, the
// merged result -- and every report rendered from it -- is
// byte-identical to LocalExecutor's at any slice count, over any
// transport. Tests assert this for shards 1/2/4 and endpoints 1/2/4
// against jobs 1/8.
#pragma once

#include <cstddef>
#include <vector>

#include "api/request.hpp"
#include "api/result.hpp"

namespace rchls::api {

/// Splits a sweep into min(k, points) child SweepRequests, each a
/// balanced contiguous slice of the swept axis (the fixed axis keeps
/// its front element). k < 1 is clamped to 1. Throws rchls::Error when
/// a bound axis is empty.
std::vector<Request> shard_sweep(const SweepRequest& req, std::size_t k);

/// Splits a grid into at most k child GridRequests: balanced contiguous
/// runs of the row-major (latency-outer) cell order that never cross a
/// row boundary -- each child is a one-latency GridRequest over a slice
/// of the areas.
std::vector<Request> shard_grid(const GridRequest& req, std::size_t k);

/// Concatenates slice results in slice order. `parts` must be the
/// results of shard_sweep's slices, in the same order.
SweepResult merge_sweep(const SweepRequest& req, std::vector<Result>& parts);

/// Concatenates slice rows in slice order and recomputes the
/// common-cell averages over the WHOLE merged grid.
GridResult merge_grid(const GridRequest& req, std::vector<Result>& parts);

}  // namespace rchls::api

// Content-addressed result cache for api::Session.
//
// Cache-key contract (pinned by docs/api.md and tests/api_session_test):
// a key is the canonical text encoding of everything a request's result
// depends on -- a format-version header, the request kind, the full
// graph (dfg::to_text) and library (library::to_text) where applicable,
// and every option field rendered deterministically (integers as
// decimal, doubles via format_shortest, variable-length strings and
// embedded artifacts length-framed so adjacent fields can never alias).
// Two requests share a key if and only if the engines are
// guaranteed to produce identical results for them. Node and version
// NAMES are deliberately included even though the engines ignore them:
// over-inclusion can only cost a cache miss, never a wrong hit.
//
// The 64-bit FNV-1a digest of the canonical encoding is the compact
// content address (logs, stats, the future wire format); the cache map
// itself is keyed on the full canonical string, so hash collisions
// cannot alias entries -- correctness never rests on 64 bits.
//
// The cache is deliberately eviction-free: results are small (designs,
// sweep points, campaign summaries -- not netlists), scenario suites are
// bounded, and eviction would make "which runs were served from cache"
// dependent on traffic order, breaking the determinism statements in
// docs/api.md. Not thread-safe; a Session confines it to one thread.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "api/request.hpp"
#include "api/result.hpp"

namespace rchls::api {

/// A computed content address: the full canonical encoding plus its
/// 64-bit digest (to_hex64(digest) is the display form).
struct CacheKey {
  std::string canonical;
  std::uint64_t digest = 0;
};

/// Canonicalize a request into its content address. Pure and
/// deterministic: equal requests (field-wise, including graph and
/// library contents) always produce equal keys, on every platform.
CacheKey key_of(const FindDesignRequest& req);
CacheKey key_of(const SweepRequest& req);
CacheKey key_of(const GridRequest& req);
CacheKey key_of(const InjectRequest& req);
CacheKey key_of(const RankGatesRequest& req);
CacheKey key_of(const StaRequest& req);
/// Variant dispatch over the typed overloads (the batch/wire entry
/// point).
CacheKey key_of(const Request& req);

/// Hit/miss counters plus the current population. `hits + misses` is the
/// total number of lookups since construction (clear() resets all
/// three).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

/// The memo table: canonical encoding -> Result. find() counts a hit or
/// a miss; store() inserts (last write wins on the -- deterministic --
/// rare path where a caller recomputes an existing key).
class ResultCache {
 public:
  /// Returns the cached result or nullptr, updating the stats. The
  /// pointer stays valid until clear() (entries are never evicted).
  const Result* find(const CacheKey& key);

  void store(const CacheKey& key, Result value);

  const CacheStats& stats() const { return stats_; }

  /// Drops every entry and zeroes the counters.
  void clear();

 private:
  std::unordered_map<std::string, Result> entries_;
  CacheStats stats_;
};

}  // namespace rchls::api

#include "api/disk_cache.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "api/wire.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"

namespace rchls::api {

namespace {

// Serial for temp-file names: pid alone is not enough when several
// Sessions (one per thread, the documented pattern) share a cache_dir
// within one process.
std::atomic<std::uint64_t> g_tmp_counter{0};

}  // namespace

DiskCache::DiskCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw Error("cannot create cache directory '" + dir_.string() + "'");
  }
}

std::filesystem::path DiskCache::entry_path(const CacheKey& key) const {
  return dir_ / (to_hex64(key.digest) + ".json");
}

std::optional<Result> DiskCache::find(const CacheKey& key) {
  std::filesystem::path path = entry_path(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    ++stats_.misses;
    return std::nullopt;
  }
  try {
    json::Value doc = json::parse(read_file(path));
    if (doc.at("format_version").as_string() != wire::kFormatVersion) {
      throw Error("stale format_version");
    }
    // The full canonical key rules out aliasing outright: a digest
    // collision (same filename, different request) fails here.
    if (doc.at("canonical").as_string() != key.canonical) {
      throw Error("canonical key mismatch");
    }
    // Rebuild the wire envelope from the stored payload and decode it;
    // re-encoding the decoded result must reproduce the stored checksum
    // (encode/decode is a fixed point), so any bit flip that survives
    // JSON parsing still fails verification.
    auto envelope = json::Value::object();
    envelope.set("format_version", wire::kFormatVersion)
        .set("kind", doc.at("kind").as_string())
        .set("result", doc.at("result"));
    Result result = wire::decode_result(envelope.dump(2) + "\n");
    if (to_hex64(fnv1a64(wire::encode(result))) !=
        doc.at("payload_check").as_string()) {
      throw Error("payload checksum mismatch");
    }
    ++stats_.hits;
    // Touch the entry so prune()'s oldest-mtime ordering approximates
    // least-recently-USED, not least-recently-written. Best effort: a
    // read-only cache directory still serves hits.
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    return result;
  } catch (const Error&) {
    ++stats_.misses;
    ++stats_.corrupt;
    return std::nullopt;
  }
}

bool DiskCache::store(const CacheKey& key, const Result& value) {
  std::string wire_text = wire::encode(value);
  json::Value wire_doc = json::parse(wire_text);

  auto doc = json::Value::object();
  doc.set("format_version", wire::kFormatVersion)
      .set("kind", wire::kind_of(value))
      .set("key_digest", to_hex64(key.digest))
      .set("canonical", key.canonical)
      .set("payload_check", to_hex64(fnv1a64(wire_text)))
      .set("result", wire_doc.at("result"));

  std::filesystem::path path = entry_path(key);
  std::filesystem::path tmp = path.string() + ".tmp." +
                              std::to_string(current_pid()) + "." +
                              std::to_string(g_tmp_counter.fetch_add(1));
  if (!write_file(tmp, doc.dump(2) + "\n")) {
    ++stats_.store_failures;
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    // E.g. a concurrent `rchls cache clear` swept the tmp file away, or
    // the disk filled up: the result is already computed, so failing to
    // PERSIST it must never fail the caller's run.
    std::filesystem::remove(tmp, ec);
    ++stats_.store_failures;
    return false;
  }
  ++stats_.stores;
  return true;
}

DiskCacheUsage DiskCache::usage() const {
  DiskCacheUsage u;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;
    }
    ++u.entries;
    // file_size reports uintmax_t(-1) on error (e.g. the entry was
    // cleared mid-scan) -- skip it rather than poisoning the total.
    std::uintmax_t size = entry.file_size(ec);
    if (!ec) u.bytes += size;
  }
  return u;
}

std::uint64_t DiskCache::clear() {
  std::uint64_t removed = 0;
  std::error_code ec;
  std::vector<std::filesystem::path> doomed;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() == ".json" ||
        name.find(".json.tmp.") != std::string::npos) {
      doomed.push_back(entry.path());
    }
  }
  for (const auto& p : doomed) {
    if (p.extension() == ".json") ++removed;
    std::filesystem::remove(p, ec);
  }
  return removed;
}

DiskCache::PruneReport DiskCache::prune(std::uint64_t max_bytes) {
  struct Entry {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::error_code ec;
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  for (const auto& it : std::filesystem::directory_iterator(dir_, ec)) {
    if (!it.is_regular_file() || it.path().extension() != ".json") continue;
    Entry e;
    e.path = it.path();
    e.mtime = it.last_write_time(ec);
    if (ec) continue;  // vanished mid-scan (concurrent clear)
    std::uintmax_t size = it.file_size(ec);
    if (ec) continue;
    e.bytes = size;
    total += e.bytes;
    entries.push_back(std::move(e));
  }

  PruneReport report;
  if (total > max_bytes) {
    // Oldest first; path is the tiebreaker so equal-mtime batches (one
    // warm run stores many entries within a clock tick) prune
    // deterministically.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.mtime != b.mtime ? a.mtime < b.mtime
                                          : a.path < b.path;
              });
    for (const Entry& e : entries) {
      if (total <= max_bytes) break;
      if (!std::filesystem::remove(e.path, ec) || ec) continue;  // raced away
      total -= e.bytes;
      ++report.removed_entries;
      report.removed_bytes += e.bytes;
    }
  }
  report.kept_entries =
      entries.size() - report.removed_entries;
  report.kept_bytes = total;
  return report;
}

}  // namespace rchls::api

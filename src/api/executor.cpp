#include "api/executor.hpp"

#include "circuits/components.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/explore.hpp"
#include "hls/find_design.hpp"
#include "netlist/stats.hpp"
#include "netlist/topology.hpp"
#include "ser/characterize.hpp"
#include "sta/design.hpp"
#include "sta/sensitivity.hpp"
#include "sta/timing.hpp"
#include "util/error.hpp"

namespace rchls::api {

namespace {

/// The dual target shape RankGatesRequest and StaRequest share: a
/// hand-built circuit component, or a graph elaborated under a version
/// policy. gate_version is empty for components (unit delay model).
struct ResolvedDesign {
  netlist::Netlist netlist;
  std::vector<library::VersionId> gate_version;
};

ResolvedDesign resolve_design(const std::string& component,
                              const std::optional<dfg::Graph>& graph,
                              const library::ResourceLibrary& lib,
                              const std::string& versions, int width) {
  if (graph) {
    if (!component.empty()) {
      throw Error("request names both a component and a graph target");
    }
    rtl::Elaboration e = sta::elaborate_design(*graph, lib, versions, width);
    return {std::move(e.netlist), std::move(e.gate_version)};
  }
  return {circuits::component_by_name(component, width), {}};
}

}  // namespace

Result Executor::run(const Request& req) {
  return std::visit([this](const auto& r) -> Result { return run(r); }, req);
}

std::vector<Result> Executor::run_batch(const std::vector<Request>& reqs) {
  std::vector<Result> out;
  out.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    try {
      out.push_back(run(reqs[i]));
    } catch (const Error& e) {
      throw BatchItemError(i, e.what());
    }
  }
  return out;
}

FindDesignResult LocalExecutor::run(const FindDesignRequest& req) {
  FindDesignResult r;
  r.engine = req.engine;
  r.latency_bound = req.latency_bound;
  r.area_bound = req.area_bound;
  try {
    if (req.engine == "centric") {
      r.design = hls::find_design(req.graph, req.library, req.latency_bound,
                                  req.area_bound, req.options);
    } else if (req.engine == "baseline") {
      hls::BaselineOptions bo;
      if (req.baseline_versions) {
        bo.fixed_versions = {
            {req.library.find(req.baseline_versions->first),
             req.library.find(req.baseline_versions->second)}};
      }
      r.design = hls::nmr_baseline(req.graph, req.library, req.latency_bound,
                                   req.area_bound, bo);
    } else if (req.engine == "combined") {
      hls::CombinedOptions co;
      co.find_design = req.options;
      r.design = hls::combined_design(req.graph, req.library,
                                      req.latency_bound, req.area_bound, co);
    } else {
      throw Error("unknown engine '" + req.engine +
                  "' (expected centric, baseline or combined)");
    }
    r.solved = true;
  } catch (const NoSolutionError& e) {
    r.solved = false;
    r.no_solution_reason = e.what();
  }
  return r;
}

SweepResult LocalExecutor::run(const SweepRequest& req) {
  SweepResult r;
  r.axis = req.axis;
  if (req.latency_bounds.empty() || req.area_bounds.empty()) {
    throw Error("sweep request needs at least one bound on each axis");
  }
  if (req.axis == SweepAxis::kLatency) {
    r.points = hls::latency_sweep(req.graph, req.library, req.latency_bounds,
                                  req.area_bounds.front(), req.options);
  } else {
    r.points = hls::area_sweep(req.graph, req.library,
                               req.latency_bounds.front(), req.area_bounds,
                               req.options);
  }
  return r;
}

GridResult LocalExecutor::run(const GridRequest& req) {
  hls::GridOptions go;
  go.find_design = req.options;
  go.combined.find_design = req.options;
  if (req.baseline_versions) {
    go.baseline.fixed_versions = {
        {req.library.find(req.baseline_versions->first),
         req.library.find(req.baseline_versions->second)}};
  }
  GridResult r;
  r.rows = hls::comparison_grid(req.graph, req.library, req.latency_bounds,
                                req.area_bounds, go);
  r.averages = hls::grid_averages(r.rows);
  return r;
}

InjectResult LocalExecutor::run(const InjectRequest& req) {
  netlist::Netlist nl = circuits::component_by_name(req.component, req.width);
  netlist::Stats stats = netlist::compute_stats(nl);

  ser::InjectionConfig cfg;
  cfg.trials = req.trials;
  cfg.seed = req.seed;

  InjectResult r;
  r.component = req.component;
  r.width = req.width;
  r.gate_count = nl.gate_count();
  r.logic_gates = stats.logic_gates;
  r.gate = req.gate;
  r.result = req.gate ? ser::inject_gate(
                            nl, static_cast<netlist::GateId>(*req.gate), cfg)
                      : ser::inject_campaign(nl, cfg);
  return r;
}

RankGatesResult LocalExecutor::run(const RankGatesRequest& req) {
  ResolvedDesign d = resolve_design(req.component, req.graph, req.library,
                                    req.versions, req.width);
  const netlist::Netlist& nl = d.netlist;

  ser::InjectionConfig cfg;
  cfg.trials = req.trials;
  cfg.seed = req.seed;

  RankGatesResult r;
  r.component = req.graph ? nl.name() : req.component;
  r.width = req.width;
  r.gates = ser::rank_gate_sensitivities(nl, cfg);
  if (req.top > 0 &&
      r.gates.size() > static_cast<std::size_t>(req.top)) {
    r.gates.resize(static_cast<std::size_t>(req.top));
  }
  for (const auto& gs : r.gates) {
    r.kinds.emplace_back(netlist::to_string(nl.gate(gs.gate).kind));
  }
  return r;
}

StaResult LocalExecutor::run(const StaRequest& req) {
  if (req.top_paths < 0 || req.top < 0) {
    throw Error("sta: top_paths and top must be >= 0");
  }
  if (req.clock < 0.0) throw Error("sta: clock must be >= 0");
  ResolvedDesign d = resolve_design(req.component, req.graph, req.library,
                                    req.versions, req.width);
  const netlist::Netlist& nl = d.netlist;
  netlist::Topology topo(nl);

  sta::DelayModel dm =
      req.graph ? sta::DelayModel::from_library(nl, d.gate_version,
                                                req.library)
                : sta::DelayModel::unit(nl);
  sta::TimingOptions topt;
  topt.clock = req.clock;
  topt.top_paths = static_cast<std::size_t>(req.top_paths);
  sta::TimingReport tr = sta::analyze(nl, topo, dm, topt);

  ser::InjectionConfig cfg;
  cfg.trials = req.trials;
  cfg.seed = req.seed;
  std::vector<sta::SensitivityRow> rows =
      sta::join_sensitivity(ser::rank_gate_sensitivities(nl, cfg), tr);
  if (req.top > 0 && rows.size() > static_cast<std::size_t>(req.top)) {
    rows.resize(static_cast<std::size_t>(req.top));
  }

  StaResult r;
  r.target = req.graph ? nl.name() : req.component;
  r.width = req.width;
  r.gate_count = nl.gate_count();
  r.logic_gates = topo.logic_gates().size();
  r.levels = tr.levels;
  r.endpoints = tr.endpoints;
  r.clock = tr.clock;
  r.arrival_max = tr.arrival_max;
  r.wns = tr.wns;
  r.tns = tr.tns;
  for (const auto& p : tr.paths) {
    StaPath path;
    path.endpoint = p.endpoint;
    path.arrival = p.arrival;
    path.slack = p.slack;
    for (const auto& s : p.steps) {
      path.steps.push_back(
          {s.gate, netlist::to_string(nl.gate(s.gate).kind), s.arrival});
    }
    r.paths.push_back(std::move(path));
  }
  for (const auto& b : tr.histogram) {
    r.histogram.push_back({b.lo, b.hi, b.count});
  }
  for (const auto& row : rows) {
    r.rows.push_back({row.gate, netlist::to_string(nl.gate(row.gate).kind),
                      row.sensitivity, row.slack});
  }
  return r;
}

}  // namespace rchls::api

#include "api/executor.hpp"

#include "circuits/components.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/explore.hpp"
#include "hls/find_design.hpp"
#include "netlist/stats.hpp"
#include "ser/characterize.hpp"
#include "util/error.hpp"

namespace rchls::api {

Result Executor::run(const Request& req) {
  return std::visit([this](const auto& r) -> Result { return run(r); }, req);
}

std::vector<Result> Executor::run_batch(const std::vector<Request>& reqs) {
  std::vector<Result> out;
  out.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    try {
      out.push_back(run(reqs[i]));
    } catch (const Error& e) {
      throw BatchItemError(i, e.what());
    }
  }
  return out;
}

FindDesignResult LocalExecutor::run(const FindDesignRequest& req) {
  FindDesignResult r;
  r.engine = req.engine;
  r.latency_bound = req.latency_bound;
  r.area_bound = req.area_bound;
  try {
    if (req.engine == "centric") {
      r.design = hls::find_design(req.graph, req.library, req.latency_bound,
                                  req.area_bound, req.options);
    } else if (req.engine == "baseline") {
      hls::BaselineOptions bo;
      if (req.baseline_versions) {
        bo.fixed_versions = {
            {req.library.find(req.baseline_versions->first),
             req.library.find(req.baseline_versions->second)}};
      }
      r.design = hls::nmr_baseline(req.graph, req.library, req.latency_bound,
                                   req.area_bound, bo);
    } else if (req.engine == "combined") {
      hls::CombinedOptions co;
      co.find_design = req.options;
      r.design = hls::combined_design(req.graph, req.library,
                                      req.latency_bound, req.area_bound, co);
    } else {
      throw Error("unknown engine '" + req.engine +
                  "' (expected centric, baseline or combined)");
    }
    r.solved = true;
  } catch (const NoSolutionError& e) {
    r.solved = false;
    r.no_solution_reason = e.what();
  }
  return r;
}

SweepResult LocalExecutor::run(const SweepRequest& req) {
  SweepResult r;
  r.axis = req.axis;
  if (req.latency_bounds.empty() || req.area_bounds.empty()) {
    throw Error("sweep request needs at least one bound on each axis");
  }
  if (req.axis == SweepAxis::kLatency) {
    r.points = hls::latency_sweep(req.graph, req.library, req.latency_bounds,
                                  req.area_bounds.front(), req.options);
  } else {
    r.points = hls::area_sweep(req.graph, req.library,
                               req.latency_bounds.front(), req.area_bounds,
                               req.options);
  }
  return r;
}

GridResult LocalExecutor::run(const GridRequest& req) {
  hls::GridOptions go;
  go.find_design = req.options;
  go.combined.find_design = req.options;
  if (req.baseline_versions) {
    go.baseline.fixed_versions = {
        {req.library.find(req.baseline_versions->first),
         req.library.find(req.baseline_versions->second)}};
  }
  GridResult r;
  r.rows = hls::comparison_grid(req.graph, req.library, req.latency_bounds,
                                req.area_bounds, go);
  r.averages = hls::grid_averages(r.rows);
  return r;
}

InjectResult LocalExecutor::run(const InjectRequest& req) {
  netlist::Netlist nl = circuits::component_by_name(req.component, req.width);
  netlist::Stats stats = netlist::compute_stats(nl);

  ser::InjectionConfig cfg;
  cfg.trials = req.trials;
  cfg.seed = req.seed;

  InjectResult r;
  r.component = req.component;
  r.width = req.width;
  r.gate_count = nl.gate_count();
  r.logic_gates = stats.logic_gates;
  r.gate = req.gate;
  r.result = req.gate ? ser::inject_gate(
                            nl, static_cast<netlist::GateId>(*req.gate), cfg)
                      : ser::inject_campaign(nl, cfg);
  return r;
}

RankGatesResult LocalExecutor::run(const RankGatesRequest& req) {
  netlist::Netlist nl = circuits::component_by_name(req.component, req.width);

  ser::InjectionConfig cfg;
  cfg.trials = req.trials;
  cfg.seed = req.seed;

  RankGatesResult r;
  r.component = req.component;
  r.width = req.width;
  r.gates = ser::rank_gate_sensitivities(nl, cfg);
  if (req.top > 0 &&
      r.gates.size() > static_cast<std::size_t>(req.top)) {
    r.gates.resize(static_cast<std::size_t>(req.top));
  }
  for (const auto& gs : r.gates) {
    r.kinds.emplace_back(netlist::to_string(nl.gate(gs.gate).kind));
  }
  return r;
}

}  // namespace rchls::api

// Typed requests for every engine operation -- the input half of the
// rchls::api facade (see docs/api.md for the full catalogue).
//
// A request is a self-contained value: it carries the graph and library
// it runs against (not references into caller state), so one request
// fully determines its result. That property is what makes requests
// cacheable -- api::key_of canonicalizes a request into a content
// address, and api::Session memoizes results under it -- and it is the
// natural wire unit for the ROADMAP's sharded/remote runners.
//
// Both front-ends build these: scenario::Runner maps `.scn` actions to
// requests, and the CLI subcommands (`rchls synth/sweep/inject`,
// api/cli.cpp) are thin request builders. Field conventions and units
// mirror the scenario actions (scenario/scenario.hpp): latencies and
// delays in cycles, areas in normalized units (ripple-carry adder == 1),
// reliabilities in (0, 1].
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "dfg/graph.hpp"
#include "hls/find_design.hpp"
#include "library/resource.hpp"

namespace rchls::api {

/// Which bound a SweepRequest varies (the other is held fixed).
enum class SweepAxis { kLatency, kArea };

/// One synthesis run under one (latency, area) bound pair.
/// `engine` selects the algorithm: "centric" (paper Fig. 6), "baseline"
/// (NMR prior work [3]) or "combined" (centric + redundancy); anything
/// else makes Session::run throw Error.
struct FindDesignRequest {
  dfg::Graph graph{"dfg"};
  library::ResourceLibrary library;
  int latency_bound = 0;      ///< Ld in cycles
  double area_bound = 0.0;    ///< Ad in normalized area units
  std::string engine = "centric";
  hls::FindDesignOptions options;
  /// Baseline-only: restrict [3] to this (adder, multiplier) version
  /// pair by library name instead of searching all combos.
  std::optional<std::pair<std::string, std::string>> baseline_versions;
};

/// find_design over a list of bounds on one axis while the other is held
/// fixed (paper Fig. 8). The swept axis reads its list; the fixed axis
/// reads element 0 of its (size >= 1) vector.
struct SweepRequest {
  dfg::Graph graph{"dfg"};
  library::ResourceLibrary library;
  SweepAxis axis = SweepAxis::kLatency;
  std::vector<int> latency_bounds;   ///< swept (kLatency) or size 1 (kArea)
  std::vector<double> area_bounds;   ///< swept (kArea) or size 1 (kLatency)
  hls::FindDesignOptions options;
};

/// The three-engine comparison over the cross product of bounds (paper
/// Table 2 / Fig. 9), including the common-cell averages.
struct GridRequest {
  dfg::Graph graph{"dfg"};
  library::ResourceLibrary library;
  std::vector<int> latency_bounds;
  std::vector<double> area_bounds;
  hls::FindDesignOptions options;  ///< centric and combined passes
  /// When set, pin the baseline to this (adder, multiplier) version pair
  /// by library name.
  std::optional<std::pair<std::string, std::string>> baseline_versions;
};

/// A Monte-Carlo SET campaign on a generated arithmetic circuit
/// (whole-circuit, or a single gate when `gate` is set). Component names
/// come from circuits::component_names(); no graph or library is
/// involved, so these two requests are fully described by their scalar
/// fields.
struct InjectRequest {
  std::string component;
  int width = 16;         ///< operand bit width
  std::size_t trials = 64 * 256;
  std::uint64_t seed = 1;
  std::optional<std::uint32_t> gate;  ///< strike only this gate id
};

/// Per-gate sensitivity characterization, reporting the `top` most
/// sensitive logic gates (0 = all). Two target shapes:
///  * a generated circuit component (`component` from
///    circuits::component_names(), `graph` empty) -- the original form;
///  * an elaborated datapath (`graph` set, `component` empty): the graph
///    is elaborated at `width` with the version assignment
///    sta::versions_for(graph, library, versions) and the ranking runs
///    on that netlist (the ROADMAP's per-design sensitivity map).
struct RankGatesRequest {
  std::string component;
  std::optional<dfg::Graph> graph;
  library::ResourceLibrary library;  ///< graph targets only
  std::string versions = "fastest";  ///< "fastest" | "most_reliable"
  int width = 16;
  std::size_t trials = 64 * 64;
  std::uint64_t seed = 1;
  int top = 10;
};

/// Static timing analysis plus the STA-slack x gate-sensitivity join
/// (src/sta, docs/timing.md) over one design. Same dual target shape as
/// RankGatesRequest: a circuit component (unit-delay model) or an
/// elaborated graph (per-pin library timing via `versions` policy).
struct StaRequest {
  std::string component;
  std::optional<dfg::Graph> graph;
  library::ResourceLibrary library;  ///< graph targets only
  std::string versions = "fastest";  ///< "fastest" | "most_reliable"
  int width = 16;
  double clock = 0.0;       ///< required time; 0 = derive from max arrival
  int top_paths = 3;        ///< critical paths to trace
  int top = 10;             ///< sensitivity-join rows to keep (0 = all)
  std::size_t trials = 64 * 64;  ///< injection trials for the join
  std::uint64_t seed = 1;
};

/// Any engine request -- the closed variant the wire protocol
/// (api/wire.hpp) ships and an api::Executor dispatches over. The
/// alternative order matches api::Result's.
using Request = std::variant<FindDesignRequest, SweepRequest, GridRequest,
                             InjectRequest, RankGatesRequest, StaRequest>;

}  // namespace rchls::api

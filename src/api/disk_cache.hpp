// Persistent on-disk result cache: the cross-process layer beneath
// api::Session's in-memory ResultCache.
//
// Layout: one file per cached result, `<dir>/<digest>.json`, where
// <digest> is the 16-hex-digit FNV-1a content address of the request's
// canonical cache key (api/cache.hpp). Each entry is a JSON document:
//
//   { "format_version": "rchls.wire.v1",
//     "kind": "sweep",
//     "key_digest": "<hex16>",
//     "canonical": "<the full canonical cache key>",
//     "payload_check": "<hex16 FNV-1a of the result's wire encoding>",
//     "result": { ... } }            // the api/wire result payload
//
// Correctness rests on verification at read time, never on trust:
//
//  * aliasing is impossible -- the FULL canonical key is stored and
//    compared against the requesting key, so even a 64-bit digest
//    collision (two keys, one filename) degrades to a miss;
//  * corruption is detected -- the decoded result is re-encoded through
//    the canonical wire encoder and its FNV-1a digest compared against
//    `payload_check`; any bit flip that survives JSON parsing changes
//    the re-encoding and is rejected as a miss (tests flip bits to pin
//    this). Unreadable/unparsable files are likewise misses, counted in
//    stats().corrupt;
//  * writes are atomic -- entries are written to a `.tmp.<pid>.<serial>`
//    sibling and renamed into place, so a crashed or concurrent writer
//    (another process, or another thread's Session sharing the
//    directory) can never leave a half-written entry under a live name.
//    Last write wins, which is safe because equal keys hold equal
//    results.
//
// The cache never evicts (mirroring ResultCache's determinism argument);
// `rchls cache stats|clear` inspects and resets a directory. A stale
// format: bumping the wire or cache-key version changes filenames or
// fails verification, so old entries silently become misses.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "api/cache.hpp"
#include "api/result.hpp"

namespace rchls::api {

/// Lookup/population counters for one DiskCache instance (per process;
/// the directory itself is shared across processes).
struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< includes corrupt entries
  std::uint64_t stores = 0;
  std::uint64_t corrupt = 0;   ///< failed verification, treated as misses
  std::uint64_t store_failures = 0;  ///< failed writes (results kept)
};

/// Aggregate of one cache directory on disk (the `rchls cache stats`
/// payload). Computed by scanning, not tracked incrementally.
struct DiskCacheUsage {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

class DiskCache {
 public:
  /// Binds to `dir`, creating it (and parents) if missing. Throws
  /// rchls::Error when the directory cannot be created.
  explicit DiskCache(std::filesystem::path dir);

  /// Returns the verified result for `key`, or nullopt on a miss (no
  /// entry, wrong canonical key, failed checksum, unreadable file).
  std::optional<Result> find(const CacheKey& key);

  /// Persists `value` under `key` (atomic rename; last write wins).
  /// Best-effort by design: persisting is an optimization, and a full
  /// disk or a concurrent `cache clear` must never fail a run whose
  /// result is already computed -- failures return false (counted in
  /// stats().store_failures) instead of throwing.
  bool store(const CacheKey& key, const Result& value);

  const DiskCacheStats& stats() const { return stats_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Scans the directory: entry count and total bytes of `*.json` files.
  DiskCacheUsage usage() const;

  /// Deletes every `*.json` entry (and stray `.tmp` files); returns the
  /// number of entries removed. The directory itself is kept.
  std::uint64_t clear();

  /// LRU eviction for long-lived caches (`rchls cache prune`): removes
  /// oldest-mtime entries until the remaining `*.json` bytes fit in
  /// `max_bytes`. Correctness-safe by construction -- every read is
  /// verified against the full canonical key, so evicting an entry can
  /// only ever cost a future miss, never a wrong hit. mtime is the
  /// recency signal (find() touches entries it serves), which is
  /// approximate on noatime-style setups but only skews WHICH entries
  /// go first, never whether pruning is safe.
  struct PruneReport {
    std::uint64_t removed_entries = 0;
    std::uint64_t removed_bytes = 0;
    std::uint64_t kept_entries = 0;
    std::uint64_t kept_bytes = 0;
  };
  PruneReport prune(std::uint64_t max_bytes);

 private:
  std::filesystem::path entry_path(const CacheKey& key) const;

  std::filesystem::path dir_;
  DiskCacheStats stats_;
};

}  // namespace rchls::api

// api::Session -- the single execution boundary in front of every
// engine.
//
// Both front-ends (scenario::Runner and the CLI, api/cli.cpp) and any
// embedding program execute engine work by building a typed request
// (request.hpp) and calling Session::run. The session stacks three
// layers in front of the engines:
//
//  1. the in-memory result cache (cache.hpp): run() first looks the
//     request's canonical key up and short-circuits on a hit, so
//     re-running an edited scenario through one session recomputes only
//     the changed actions;
//  2. the optional persistent disk cache (disk_cache.hpp), consulted on
//     a memory miss: entries live under SessionOptions::cache_dir as
//     digest-named wire files, so a SEPARATE process that ran the same
//     request already paid for it -- warm CLI re-invocations execute
//     nothing (CI asserts zero executions on the second run);
//  3. the Executor (executor.hpp), which owns WHERE a miss actually
//     executes: LocalExecutor (default) dispatches in-process to
//     hls::find_design / nmr_baseline / combined_design, the sweep and
//     grid drivers, and the ser campaign entry points;
//     SubprocessExecutor (subprocess.hpp) shards the work across
//     `rchls exec-request` worker processes over the wire protocol.
//
// SessionOptions::jobs, when non-zero, is written to the process-wide
// parallel::Config at construction (the pool itself stays
// process-global; engines partition deterministically, so the worker
// count never changes results).
//
// Determinism guarantee: for a given request, run() returns a result
// that is byte-identical (through every report writer) whether it was
// computed cold, served from either cache layer, computed at a
// different --jobs value, or sharded across processes. This is tested
// by tests/api_session_test.cpp, tests/api_executor_test.cpp and
// enforced in CI by `rchls run --verify-cache` plus the cross-process
// warm-cache job.
//
// Error behavior: infeasible synthesis bounds are results (solved ==
// false), not errors. Structural problems -- an unknown engine or
// component name, a library missing a resource class or version the
// request names -- throw rchls::Error; failed executions are never
// cached (in memory or on disk). Sessions are value-cheap to create but
// single-threaded: share one per thread, not across threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/cache.hpp"
#include "api/disk_cache.hpp"
#include "api/executor.hpp"
#include "api/request.hpp"
#include "api/result.hpp"

namespace rchls::api {

struct SessionOptions {
  /// Memoize results by content address. Off = every run() executes
  /// (and the disk cache, if any, is bypassed too).
  bool enable_cache = true;
  /// Worker count for parallel regions; 0 leaves the process-wide
  /// parallel::Config untouched (the CLI's --jobs default).
  std::size_t jobs = 0;
  /// Directory of the persistent result cache; empty = memory only.
  /// (The CLI wires --cache-dir / RCHLS_CACHE_DIR through here.)
  std::string cache_dir;
  /// Execution seam; null = a private LocalExecutor.
  std::shared_ptr<Executor> executor;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});

  /// Executes the request (or serves it from a cache layer). See the
  /// header comment for the determinism and error contracts.
  FindDesignResult run(const FindDesignRequest& req);
  SweepResult run(const SweepRequest& req);
  GridResult run(const GridRequest& req);
  InjectResult run(const InjectRequest& req);
  RankGatesResult run(const RankGatesRequest& req);
  StaResult run(const StaRequest& req);

  /// Variant overload for wire-decoded requests (used by
  /// `rchls exec-request`); same caching and error behavior.
  Result run(const Request& req);

  /// Runs a whole batch (a scenario's actions), results index-aligned
  /// with `reqs`. When the executor advertises supports_batching(),
  /// the cache layers are consulted once per item and every miss is
  /// dispatched in ONE executor run_batch call (a remote executor
  /// spreads them across its fleet); otherwise each item goes through
  /// the plain serial run() path, preserving its exact semantics and
  /// stats. Results are byte-identical either way (every request is a
  /// pure function). A failure is thrown as BatchItemError carrying
  /// the failing index in `reqs`; on the batched path the other items'
  /// work is discarded uncached, on the serial path items before the
  /// failure are already cached (the same partial-progress behavior a
  /// caller's own run() loop would leave).
  std::vector<Result> run_batch(const std::vector<Request>& reqs);

  /// Lookup/population counters of the in-memory layer -- the
  /// observable cache behavior tests and `rchls run --verify-cache`
  /// assert on. A disk hit counts as a memory miss here (the request
  /// did reach layer 2) and a hit in disk_stats().
  const CacheStats& cache_stats() const { return cache_.stats(); }

  /// Counters of the persistent layer (all zero when no cache_dir was
  /// configured).
  const DiskCacheStats& disk_stats() const;

  /// Number of requests that reached the executor (neither cache layer
  /// answered). The "zero engine executions" acceptance criterion for
  /// warm cross-process runs is asserted on this.
  std::uint64_t executions() const { return executions_; }

  /// Drops all in-memory cached results and zeroes the stats (the disk
  /// layer is unaffected; use `rchls cache clear` / DiskCache::clear).
  void clear_cache() { cache_.clear(); }

 private:
  template <typename ResultT, typename RequestT>
  ResultT cached(const RequestT& req);

  SessionOptions options_;
  ResultCache cache_;
  std::unique_ptr<DiskCache> disk_;
  std::shared_ptr<Executor> executor_;
  std::uint64_t executions_ = 0;
};

}  // namespace rchls::api

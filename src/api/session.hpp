// api::Session -- the single execution boundary in front of every
// engine.
//
// Both front-ends (scenario::Runner and the CLI, api/cli.cpp) and any
// embedding program execute engine work by building a typed request
// (request.hpp) and calling Session::run. The session owns the pieces a
// request execution needs:
//
//  * the engine wiring -- the dispatch from request fields to
//    hls::find_design / nmr_baseline / combined_design, the sweep and
//    grid drivers, and the ser campaign entry points, including the
//    component registry lookups (circuits::component_by_name) and
//    library version-name resolution;
//  * the parallel worker configuration -- SessionOptions::jobs, when
//    non-zero, is written to the process-wide parallel::Config at
//    construction (the pool itself stays process-global, see
//    parallel/parallel_for.cpp; engines partition deterministically, so
//    the worker count never changes results);
//  * the content-addressed result cache (cache.hpp): run() first looks
//    the request's canonical key up and only executes on a miss, so
//    re-running an edited scenario through one session recomputes only
//    the changed actions.
//
// Determinism guarantee: for a given request, run() returns a result
// that is byte-identical (through every report writer) whether it was
// computed cold, served from cache, or computed at a different --jobs
// value. This is tested by tests/api_session_test.cpp and enforced in
// CI by `rchls run --verify-cache` over every shipped scenario.
//
// Error behavior: infeasible synthesis bounds are results (solved ==
// false), not errors. Structural problems -- an unknown engine or
// component name, a library missing a resource class or version the
// request names -- throw rchls::Error; failed executions are never
// cached. Sessions are value-cheap to create but single-threaded: share
// one per thread, not across threads.
#pragma once

#include "api/cache.hpp"
#include "api/request.hpp"
#include "api/result.hpp"

namespace rchls::api {

struct SessionOptions {
  /// Memoize results by content address. Off = every run() executes.
  bool enable_cache = true;
  /// Worker count for parallel regions; 0 leaves the process-wide
  /// parallel::Config untouched (the CLI's --jobs default).
  std::size_t jobs = 0;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});

  /// Executes the request (or serves it from cache). See the header
  /// comment for the determinism and error contracts.
  FindDesignResult run(const FindDesignRequest& req);
  SweepResult run(const SweepRequest& req);
  GridResult run(const GridRequest& req);
  InjectResult run(const InjectRequest& req);
  RankGatesResult run(const RankGatesRequest& req);

  /// Lookup/population counters -- the observable cache behavior tests
  /// and `rchls run --verify-cache` assert on.
  const CacheStats& cache_stats() const { return cache_.stats(); }

  /// Drops all cached results and zeroes the stats.
  void clear_cache() { cache_.clear(); }

 private:
  template <typename ResultT, typename RequestT, typename Fn>
  ResultT cached(const RequestT& req, Fn execute);

  SessionOptions options_;
  ResultCache cache_;
};

}  // namespace rchls::api

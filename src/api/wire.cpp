#include "api/wire.hpp"

#include <charconv>
#include <limits>

#include "dfg/io.hpp"
#include "library/io.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace rchls::api::wire {

namespace {

// ----------------------------------------------------------- field helpers

[[noreturn]] void fail(const std::string& msg) { throw Error("wire: " + msg); }

int to_int(const json::Value& v, const char* what) {
  std::int64_t x = v.as_int();
  if (x < std::numeric_limits<int>::min() ||
      x > std::numeric_limits<int>::max()) {
    fail(std::string(what) + " is out of int range");
  }
  return static_cast<int>(x);
}

std::size_t to_size(const json::Value& v, const char* what) {
  std::int64_t x = v.as_int();
  if (x < 0) fail(std::string(what) + " must be non-negative");
  return static_cast<std::size_t>(x);
}

std::uint32_t to_u32(const json::Value& v, const char* what) {
  std::int64_t x = v.as_int();
  if (x < 0 || x > std::numeric_limits<std::uint32_t>::max()) {
    fail(std::string(what) + " is out of uint32 range");
  }
  return static_cast<std::uint32_t>(x);
}

// 64-bit seeds ride as decimal strings: JSON integers are int64 at best,
// and a seed of 2^63 must round-trip exactly, not wrap negative.
json::Value seed_to_json(std::uint64_t seed) {
  return json::Value(std::to_string(seed));
}

std::uint64_t seed_from_json(const json::Value& v) {
  const std::string& s = v.as_string();
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail("seed is not a decimal uint64: '" + s + "'");
  }
  return out;
}

json::Value opt_to_json(const std::optional<double>& d) {
  return d ? json::Value(*d) : json::Value();
}

std::optional<double> opt_double_from_json(const json::Value& v) {
  if (v.is_null()) return std::nullopt;
  return v.as_double();
}

json::Value int_list_to_json(const std::vector<int>& xs) {
  auto a = json::Value::array();
  for (int x : xs) a.push(x);
  return a;
}

std::vector<int> int_list_from_json(const json::Value& v, const char* what) {
  std::vector<int> out;
  for (const auto& x : v.items()) out.push_back(to_int(x, what));
  return out;
}

json::Value double_list_to_json(const std::vector<double>& xs) {
  auto a = json::Value::array();
  for (double x : xs) a.push(x);
  return a;
}

std::vector<double> double_list_from_json(const json::Value& v) {
  std::vector<double> out;
  for (const auto& x : v.items()) out.push_back(x.as_double());
  return out;
}

// ------------------------------------------------------- shared sub-objects

json::Value context_to_json(const dfg::Graph& g,
                            const library::ResourceLibrary& lib) {
  // Graphs and libraries ship as their own round-tripping text formats
  // (dfg/io, library/io) embedded in JSON strings -- one grammar for
  // files, scenarios and the wire.
  auto v = json::Value::object();
  v.set("graph", dfg::to_text(g)).set("library", library::to_text(lib));
  return v;
}

json::Value options_to_json(const hls::FindDesignOptions& o) {
  auto v = json::Value::object();
  v.set("scheduler",
        o.scheduler == hls::SchedulerKind::kDensity ? "density" : "fds")
      .set("consolidation", o.enable_consolidation)
      .set("polish", o.enable_polish)
      .set("explore", o.explore_tighter_latency)
      .set("max_iterations", o.max_iterations);
  return v;
}

hls::FindDesignOptions options_from_json(const json::Value& v) {
  hls::FindDesignOptions o;
  const std::string& sched = v.at("scheduler").as_string();
  if (sched == "density") {
    o.scheduler = hls::SchedulerKind::kDensity;
  } else if (sched == "fds") {
    o.scheduler = hls::SchedulerKind::kForceDirected;
  } else {
    fail("unknown scheduler '" + sched + "'");
  }
  o.enable_consolidation = v.at("consolidation").as_bool();
  o.enable_polish = v.at("polish").as_bool();
  o.explore_tighter_latency = to_int(v.at("explore"), "explore");
  o.max_iterations = to_int(v.at("max_iterations"), "max_iterations");
  return o;
}

json::Value baseline_to_json(
    const std::optional<std::pair<std::string, std::string>>& versions) {
  if (!versions) return json::Value();
  auto a = json::Value::array();
  a.push(versions->first).push(versions->second);
  return a;
}

std::optional<std::pair<std::string, std::string>> baseline_from_json(
    const json::Value& v) {
  if (v.is_null()) return std::nullopt;
  if (v.items().size() != 2) {
    fail("baseline_versions must be null or [adder, mult]");
  }
  return std::make_pair(v.items()[0].as_string(), v.items()[1].as_string());
}

const char* axis_name(SweepAxis axis) {
  return axis == SweepAxis::kLatency ? "latency" : "area";
}

SweepAxis axis_from_json(const json::Value& v) {
  const std::string& s = v.as_string();
  if (s == "latency") return SweepAxis::kLatency;
  if (s == "area") return SweepAxis::kArea;
  fail("unknown sweep axis '" + s + "'");
}

// --------------------------------------------------------- request payloads

json::Value payload(const FindDesignRequest& r) {
  auto v = context_to_json(r.graph, r.library);
  v.set("latency_bound", r.latency_bound)
      .set("area_bound", r.area_bound)
      .set("engine", r.engine)
      .set("options", options_to_json(r.options))
      .set("baseline_versions", baseline_to_json(r.baseline_versions));
  return v;
}

json::Value payload(const SweepRequest& r) {
  auto v = context_to_json(r.graph, r.library);
  v.set("axis", axis_name(r.axis))
      .set("latency_bounds", int_list_to_json(r.latency_bounds))
      .set("area_bounds", double_list_to_json(r.area_bounds))
      .set("options", options_to_json(r.options));
  return v;
}

json::Value payload(const GridRequest& r) {
  auto v = context_to_json(r.graph, r.library);
  v.set("latency_bounds", int_list_to_json(r.latency_bounds))
      .set("area_bounds", double_list_to_json(r.area_bounds))
      .set("options", options_to_json(r.options))
      .set("baseline_versions", baseline_to_json(r.baseline_versions));
  return v;
}

json::Value payload(const InjectRequest& r) {
  auto v = json::Value::object();
  v.set("component", r.component)
      .set("width", r.width)
      .set("trials", r.trials)
      .set("seed", seed_to_json(r.seed))
      .set("gate", r.gate ? json::Value(*r.gate) : json::Value());
  return v;
}

json::Value payload(const RankGatesRequest& r) {
  auto v = json::Value::object();
  v.set("component", r.component);
  if (r.graph) {
    // Graph-shaped targets carry their context; component-shaped
    // payloads stay byte-identical to the pre-sta encoding (existing
    // wire files and fuzz seeds remain canonical fixed points).
    v.set("graph", dfg::to_text(*r.graph))
        .set("library", library::to_text(r.library))
        .set("versions", r.versions);
  }
  v.set("width", r.width)
      .set("trials", r.trials)
      .set("seed", seed_to_json(r.seed))
      .set("top", r.top);
  return v;
}

json::Value payload(const StaRequest& r) {
  auto v = json::Value::object();
  v.set("component", r.component);
  if (r.graph) {
    v.set("graph", dfg::to_text(*r.graph))
        .set("library", library::to_text(r.library))
        .set("versions", r.versions);
  }
  v.set("width", r.width)
      .set("clock", r.clock)
      .set("top_paths", r.top_paths)
      .set("top", r.top)
      .set("trials", r.trials)
      .set("seed", seed_to_json(r.seed));
  return v;
}

FindDesignRequest find_design_request(const json::Value& v) {
  FindDesignRequest r;
  r.graph = dfg::parse_string(v.at("graph").as_string());
  r.library = library::parse_string(v.at("library").as_string());
  r.latency_bound = to_int(v.at("latency_bound"), "latency_bound");
  r.area_bound = v.at("area_bound").as_double();
  r.engine = v.at("engine").as_string();
  r.options = options_from_json(v.at("options"));
  r.baseline_versions = baseline_from_json(v.at("baseline_versions"));
  return r;
}

SweepRequest sweep_request(const json::Value& v) {
  SweepRequest r;
  r.graph = dfg::parse_string(v.at("graph").as_string());
  r.library = library::parse_string(v.at("library").as_string());
  r.axis = axis_from_json(v.at("axis"));
  r.latency_bounds = int_list_from_json(v.at("latency_bounds"), "latency");
  r.area_bounds = double_list_from_json(v.at("area_bounds"));
  r.options = options_from_json(v.at("options"));
  return r;
}

GridRequest grid_request(const json::Value& v) {
  GridRequest r;
  r.graph = dfg::parse_string(v.at("graph").as_string());
  r.library = library::parse_string(v.at("library").as_string());
  r.latency_bounds = int_list_from_json(v.at("latency_bounds"), "latency");
  r.area_bounds = double_list_from_json(v.at("area_bounds"));
  r.options = options_from_json(v.at("options"));
  r.baseline_versions = baseline_from_json(v.at("baseline_versions"));
  return r;
}

InjectRequest inject_request(const json::Value& v) {
  InjectRequest r;
  r.component = v.at("component").as_string();
  r.width = to_int(v.at("width"), "width");
  r.trials = to_size(v.at("trials"), "trials");
  r.seed = seed_from_json(v.at("seed"));
  const json::Value& gate = v.at("gate");
  if (!gate.is_null()) r.gate = to_u32(gate, "gate");
  return r;
}

RankGatesRequest rank_gates_request(const json::Value& v) {
  RankGatesRequest r;
  r.component = v.at("component").as_string();
  if (const json::Value* graph = v.find("graph")) {
    r.graph = dfg::parse_string(graph->as_string());
    r.library = library::parse_string(v.at("library").as_string());
    r.versions = v.at("versions").as_string();
  }
  r.width = to_int(v.at("width"), "width");
  r.trials = to_size(v.at("trials"), "trials");
  r.seed = seed_from_json(v.at("seed"));
  r.top = to_int(v.at("top"), "top");
  return r;
}

StaRequest sta_request(const json::Value& v) {
  StaRequest r;
  r.component = v.at("component").as_string();
  if (const json::Value* graph = v.find("graph")) {
    r.graph = dfg::parse_string(graph->as_string());
    r.library = library::parse_string(v.at("library").as_string());
    r.versions = v.at("versions").as_string();
  }
  r.width = to_int(v.at("width"), "width");
  r.clock = v.at("clock").as_double();
  r.top_paths = to_int(v.at("top_paths"), "top_paths");
  r.top = to_int(v.at("top"), "top");
  r.trials = to_size(v.at("trials"), "trials");
  r.seed = seed_from_json(v.at("seed"));
  return r;
}

// ---------------------------------------------------------- result payloads

json::Value design_to_json(const hls::Design& d) {
  auto v = json::Value::object();
  auto version_of = json::Value::array();
  for (auto id : d.version_of) version_of.push(id);
  v.set("version_of", std::move(version_of));

  auto schedule = json::Value::object();
  schedule.set("start", int_list_to_json(d.schedule.start))
      .set("latency", d.schedule.latency);
  v.set("schedule", std::move(schedule));

  auto instances = json::Value::array();
  for (const auto& inst : d.binding.instances) {
    auto ji = json::Value::object();
    auto ops = json::Value::array();
    for (auto op : inst.ops) ops.push(op);
    ji.set("version", inst.version).set("ops", std::move(ops));
    instances.push(std::move(ji));
  }
  auto instance_of = json::Value::array();
  for (auto id : d.binding.instance_of) instance_of.push(id);
  auto binding = json::Value::object();
  binding.set("instances", std::move(instances))
      .set("instance_of", std::move(instance_of));
  v.set("binding", std::move(binding));

  v.set("copies", int_list_to_json(d.copies))
      .set("latency", d.latency)
      .set("area", d.area)
      .set("reliability", d.reliability);
  return v;
}

hls::Design design_from_json(const json::Value& v) {
  hls::Design d;
  for (const auto& x : v.at("version_of").items()) {
    d.version_of.push_back(to_u32(x, "version_of"));
  }
  const json::Value& schedule = v.at("schedule");
  d.schedule.start = int_list_from_json(schedule.at("start"), "start");
  d.schedule.latency = to_int(schedule.at("latency"), "schedule.latency");

  const json::Value& binding = v.at("binding");
  for (const auto& ji : binding.at("instances").items()) {
    bind::Instance inst;
    inst.version = to_u32(ji.at("version"), "instance version");
    for (const auto& op : ji.at("ops").items()) {
      inst.ops.push_back(to_u32(op, "instance op"));
    }
    d.binding.instances.push_back(std::move(inst));
  }
  for (const auto& x : binding.at("instance_of").items()) {
    d.binding.instance_of.push_back(to_u32(x, "instance_of"));
  }

  d.copies = int_list_from_json(v.at("copies"), "copies");
  d.latency = to_int(v.at("latency"), "latency");
  d.area = v.at("area").as_double();
  d.reliability = v.at("reliability").as_double();
  return d;
}

json::Value injection_to_json(const ser::InjectionResult& r) {
  auto v = json::Value::object();
  v.set("trials", r.trials)
      .set("propagated", r.propagated)
      .set("logical_sensitivity", r.logical_sensitivity)
      .set("susceptibility", r.susceptibility)
      .set("half_width_95", r.half_width_95);
  return v;
}

ser::InjectionResult injection_from_json(const json::Value& v) {
  ser::InjectionResult r;
  r.trials = to_size(v.at("trials"), "trials");
  r.propagated = to_size(v.at("propagated"), "propagated");
  r.logical_sensitivity = v.at("logical_sensitivity").as_double();
  r.susceptibility = v.at("susceptibility").as_double();
  r.half_width_95 = v.at("half_width_95").as_double();
  return r;
}

json::Value payload(const FindDesignResult& r) {
  auto v = json::Value::object();
  v.set("engine", r.engine)
      .set("latency_bound", r.latency_bound)
      .set("area_bound", r.area_bound)
      .set("solved", r.solved)
      .set("design", r.design ? design_to_json(*r.design) : json::Value())
      .set("no_solution_reason", r.no_solution_reason);
  return v;
}

json::Value payload(const SweepResult& r) {
  auto v = json::Value::object();
  v.set("axis", axis_name(r.axis));
  auto points = json::Value::array();
  for (const auto& p : r.points) {
    auto jp = json::Value::object();
    jp.set("latency_bound", p.latency_bound)
        .set("area_bound", p.area_bound)
        .set("reliability", opt_to_json(p.reliability))
        .set("area", opt_to_json(p.area))
        .set("latency",
             p.latency ? json::Value(*p.latency) : json::Value());
    points.push(std::move(jp));
  }
  v.set("points", std::move(points));
  return v;
}

json::Value payload(const GridResult& r) {
  auto v = json::Value::object();
  auto rows = json::Value::array();
  for (const auto& row : r.rows) {
    auto jr = json::Value::object();
    jr.set("latency_bound", row.latency_bound)
        .set("area_bound", row.area_bound)
        .set("baseline", opt_to_json(row.baseline))
        .set("ours", opt_to_json(row.ours))
        .set("combined", opt_to_json(row.combined))
        .set("improvement_ours", opt_to_json(row.improvement_ours))
        .set("improvement_combined",
             opt_to_json(row.improvement_combined));
    rows.push(std::move(jr));
  }
  v.set("rows", std::move(rows));
  auto avg = json::Value::object();
  avg.set("baseline", r.averages.baseline)
      .set("ours", r.averages.ours)
      .set("combined", r.averages.combined)
      .set("solved_cells", r.averages.solved_cells)
      .set("total_cells", r.averages.total_cells);
  v.set("averages", std::move(avg));
  return v;
}

json::Value payload(const InjectResult& r) {
  auto v = json::Value::object();
  v.set("component", r.component)
      .set("width", r.width)
      .set("gate_count", r.gate_count)
      .set("logic_gates", r.logic_gates)
      .set("gate", r.gate ? json::Value(*r.gate) : json::Value())
      .set("result", injection_to_json(r.result));
  return v;
}

json::Value payload(const RankGatesResult& r) {
  auto v = json::Value::object();
  v.set("component", r.component).set("width", r.width);
  auto gates = json::Value::array();
  for (const auto& g : r.gates) {
    auto jg = json::Value::object();
    jg.set("gate", g.gate).set("result", injection_to_json(g.result));
    gates.push(std::move(jg));
  }
  v.set("gates", std::move(gates));
  auto kinds = json::Value::array();
  for (const auto& k : r.kinds) kinds.push(k);
  v.set("kinds", std::move(kinds));
  return v;
}

json::Value payload(const StaResult& r) {
  auto v = json::Value::object();
  v.set("target", r.target)
      .set("width", r.width)
      .set("gate_count", r.gate_count)
      .set("logic_gates", r.logic_gates)
      .set("levels", r.levels)
      .set("endpoints", r.endpoints)
      .set("clock", r.clock)
      .set("arrival_max", r.arrival_max)
      .set("wns", r.wns)
      .set("tns", r.tns);
  auto paths = json::Value::array();
  for (const auto& p : r.paths) {
    auto jp = json::Value::object();
    auto steps = json::Value::array();
    for (const auto& s : p.steps) {
      auto js = json::Value::object();
      js.set("gate", s.gate).set("kind", s.kind).set("arrival", s.arrival);
      steps.push(std::move(js));
    }
    jp.set("endpoint", p.endpoint)
        .set("arrival", p.arrival)
        .set("slack", p.slack)
        .set("steps", std::move(steps));
    paths.push(std::move(jp));
  }
  v.set("paths", std::move(paths));
  auto histogram = json::Value::array();
  for (const auto& b : r.histogram) {
    auto jb = json::Value::object();
    jb.set("lo", b.lo).set("hi", b.hi).set("count", b.count);
    histogram.push(std::move(jb));
  }
  v.set("histogram", std::move(histogram));
  auto rows = json::Value::array();
  for (const auto& row : r.rows) {
    auto jr = json::Value::object();
    jr.set("gate", row.gate)
        .set("kind", row.kind)
        .set("sensitivity", row.sensitivity)
        .set("slack", row.slack);
    rows.push(std::move(jr));
  }
  v.set("rows", std::move(rows));
  return v;
}

FindDesignResult find_design_result(const json::Value& v) {
  FindDesignResult r;
  r.engine = v.at("engine").as_string();
  r.latency_bound = to_int(v.at("latency_bound"), "latency_bound");
  r.area_bound = v.at("area_bound").as_double();
  r.solved = v.at("solved").as_bool();
  const json::Value& design = v.at("design");
  if (!design.is_null()) r.design = design_from_json(design);
  r.no_solution_reason = v.at("no_solution_reason").as_string();
  return r;
}

SweepResult sweep_result(const json::Value& v) {
  SweepResult r;
  r.axis = axis_from_json(v.at("axis"));
  for (const auto& jp : v.at("points").items()) {
    hls::SweepPoint p;
    p.latency_bound = to_int(jp.at("latency_bound"), "latency_bound");
    p.area_bound = jp.at("area_bound").as_double();
    p.reliability = opt_double_from_json(jp.at("reliability"));
    p.area = opt_double_from_json(jp.at("area"));
    const json::Value& lat = jp.at("latency");
    if (!lat.is_null()) p.latency = to_int(lat, "latency");
    r.points.push_back(p);
  }
  return r;
}

GridResult grid_result(const json::Value& v) {
  GridResult r;
  for (const auto& jr : v.at("rows").items()) {
    hls::ComparisonRow row;
    row.latency_bound = to_int(jr.at("latency_bound"), "latency_bound");
    row.area_bound = jr.at("area_bound").as_double();
    row.baseline = opt_double_from_json(jr.at("baseline"));
    row.ours = opt_double_from_json(jr.at("ours"));
    row.combined = opt_double_from_json(jr.at("combined"));
    row.improvement_ours =
        opt_double_from_json(jr.at("improvement_ours"));
    row.improvement_combined =
        opt_double_from_json(jr.at("improvement_combined"));
    r.rows.push_back(row);
  }
  const json::Value& avg = v.at("averages");
  r.averages.baseline = avg.at("baseline").as_double();
  r.averages.ours = avg.at("ours").as_double();
  r.averages.combined = avg.at("combined").as_double();
  r.averages.solved_cells = to_int(avg.at("solved_cells"), "solved_cells");
  r.averages.total_cells = to_int(avg.at("total_cells"), "total_cells");
  return r;
}

InjectResult inject_result(const json::Value& v) {
  InjectResult r;
  r.component = v.at("component").as_string();
  r.width = to_int(v.at("width"), "width");
  r.gate_count = to_size(v.at("gate_count"), "gate_count");
  r.logic_gates = to_size(v.at("logic_gates"), "logic_gates");
  const json::Value& gate = v.at("gate");
  if (!gate.is_null()) r.gate = to_u32(gate, "gate");
  r.result = injection_from_json(v.at("result"));
  return r;
}

RankGatesResult rank_gates_result(const json::Value& v) {
  RankGatesResult r;
  r.component = v.at("component").as_string();
  r.width = to_int(v.at("width"), "width");
  for (const auto& jg : v.at("gates").items()) {
    ser::GateSensitivity g;
    g.gate = to_u32(jg.at("gate"), "gate");
    g.result = injection_from_json(jg.at("result"));
    r.gates.push_back(g);
  }
  for (const auto& k : v.at("kinds").items()) {
    r.kinds.push_back(k.as_string());
  }
  if (r.kinds.size() != r.gates.size()) {
    fail("rank_gates kinds/gates length mismatch");
  }
  return r;
}

StaResult sta_result(const json::Value& v) {
  StaResult r;
  r.target = v.at("target").as_string();
  r.width = to_int(v.at("width"), "width");
  r.gate_count = to_size(v.at("gate_count"), "gate_count");
  r.logic_gates = to_size(v.at("logic_gates"), "logic_gates");
  r.levels = to_size(v.at("levels"), "levels");
  r.endpoints = to_size(v.at("endpoints"), "endpoints");
  r.clock = v.at("clock").as_double();
  r.arrival_max = v.at("arrival_max").as_double();
  r.wns = v.at("wns").as_double();
  r.tns = v.at("tns").as_double();
  for (const auto& jp : v.at("paths").items()) {
    StaPath p;
    p.endpoint = to_u32(jp.at("endpoint"), "endpoint");
    p.arrival = jp.at("arrival").as_double();
    p.slack = jp.at("slack").as_double();
    for (const auto& js : jp.at("steps").items()) {
      StaPathStep s;
      s.gate = to_u32(js.at("gate"), "gate");
      s.kind = js.at("kind").as_string();
      s.arrival = js.at("arrival").as_double();
      p.steps.push_back(std::move(s));
    }
    r.paths.push_back(std::move(p));
  }
  for (const auto& jb : v.at("histogram").items()) {
    StaBin b;
    b.lo = jb.at("lo").as_double();
    b.hi = jb.at("hi").as_double();
    b.count = to_size(jb.at("count"), "count");
    r.histogram.push_back(b);
  }
  for (const auto& jr : v.at("rows").items()) {
    StaRow row;
    row.gate = to_u32(jr.at("gate"), "gate");
    row.kind = jr.at("kind").as_string();
    row.sensitivity = jr.at("sensitivity").as_double();
    row.slack = jr.at("slack").as_double();
    r.rows.push_back(std::move(row));
  }
  return r;
}

// ----------------------------------------------------------------- envelope

std::string seal(const char* kind, const char* slot, json::Value body) {
  auto doc = json::Value::object();
  doc.set("format_version", kFormatVersion)
      .set("kind", kind)
      .set(slot, std::move(body));
  return doc.dump(2) + "\n";
}

// Parses the envelope, checks the version, and returns (kind, payload).
std::pair<std::string, const json::Value*> open(const json::Value& doc,
                                                const char* slot) {
  const std::string& version = doc.at("format_version").as_string();
  if (version != kFormatVersion) {
    fail("unsupported format_version '" + version + "' (expected " +
         kFormatVersion + ")");
  }
  return {doc.at("kind").as_string(), &doc.at(slot)};
}

}  // namespace

const char* kind_of(const Request& req) {
  struct Visitor {
    const char* operator()(const FindDesignRequest&) { return "find_design"; }
    const char* operator()(const SweepRequest&) { return "sweep"; }
    const char* operator()(const GridRequest&) { return "grid"; }
    const char* operator()(const InjectRequest&) { return "inject"; }
    const char* operator()(const RankGatesRequest&) { return "rank_gates"; }
    const char* operator()(const StaRequest&) { return "sta"; }
  };
  return std::visit(Visitor{}, req);
}

const char* kind_of(const Result& res) {
  struct Visitor {
    const char* operator()(const FindDesignResult&) { return "find_design"; }
    const char* operator()(const SweepResult&) { return "sweep"; }
    const char* operator()(const GridResult&) { return "grid"; }
    const char* operator()(const InjectResult&) { return "inject"; }
    const char* operator()(const RankGatesResult&) { return "rank_gates"; }
    const char* operator()(const StaResult&) { return "sta"; }
  };
  return std::visit(Visitor{}, res);
}

std::string encode(const Request& req) {
  return std::visit(
      [&](const auto& r) { return seal(kind_of(req), "request", payload(r)); },
      req);
}

std::string encode(const Result& res) {
  return std::visit(
      [&](const auto& r) { return seal(kind_of(res), "result", payload(r)); },
      res);
}

Request decode_request(const std::string& text) {
  json::Value doc = json::parse(text);
  auto [kind, body] = open(doc, "request");
  if (kind == "find_design") return find_design_request(*body);
  if (kind == "sweep") return sweep_request(*body);
  if (kind == "grid") return grid_request(*body);
  if (kind == "inject") return inject_request(*body);
  if (kind == "rank_gates") return rank_gates_request(*body);
  if (kind == "sta") return sta_request(*body);
  fail("unknown request kind '" + kind + "'");
}

Result decode_result(const std::string& text) {
  json::Value doc = json::parse(text);
  auto [kind, body] = open(doc, "result");
  if (kind == "find_design") return find_design_result(*body);
  if (kind == "sweep") return sweep_result(*body);
  if (kind == "grid") return grid_result(*body);
  if (kind == "inject") return inject_result(*body);
  if (kind == "rank_gates") return rank_gates_result(*body);
  if (kind == "sta") return sta_result(*body);
  fail("unknown result kind '" + kind + "'");
}

}  // namespace rchls::api::wire

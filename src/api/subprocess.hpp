// SubprocessExecutor: fan engine requests out to worker PROCESSES over
// the wire protocol.
//
// Sweep and Grid requests are embarrassingly cell-parallel (every point
// of hls::latency_sweep / area_sweep / comparison_grid is independent),
// so this executor shards them into min(shards, cells) BATCHED child
// requests -- balanced contiguous slices of the swept bounds (grid
// slices never cross a row boundary) -- writes each as a wire file,
// runs the `rchls exec-request <request.json> <result.json>` worker
// processes concurrently, and merges the slice results back in slice
// order. Batching is what makes single-host sharding pay: one process
// per CELL was spawn-bound (~1.8x slower than local on 12-cell
// sweeps); one process per SLICE amortizes spawn + wire I/O over
// cells/shards cells, and each worker parallelizes across its slice
// with its own pool (the --jobs cap rides along). The other request
// kinds ship as a single child request -- everything the executor runs
// goes over the wire, nothing executes in-process.
//
// Determinism: slicing is by index, contiguous, and merged in slice
// order, and every cell is computed independently of its neighbors, so
// the merged result -- and every report rendered from it -- is
// byte-identical to LocalExecutor's at any shard count (tests assert
// shards 1/2/4 against jobs 1/2/8). Grid averages are recomputed from
// the merged rows with hls::grid_averages, the same pure function the
// local path uses.
//
// Failure: a worker that exits non-zero, writes no result, or writes a
// result of the wrong kind fails the whole request with rchls::Error
// (first failing cell wins), including the tail of the worker's stderr.
// Partial results are never merged.
//
// This is the process-level rung of the ROADMAP's remote-runner ladder:
// the wire files this executor exchanges with its workers are exactly
// what a remote transport would ship between hosts.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "api/executor.hpp"

namespace rchls::api {

struct SubprocessOptions {
  /// Maximum concurrent worker processes (>= 1).
  int shards = 2;
  /// argv prefix of the worker; the executor appends the request and
  /// result file paths (plus --cache-dir when `cache_dir` is set).
  /// Empty = {<this executable>, "exec-request"} -- correct when the
  /// embedding binary is the rchls CLI itself.
  std::vector<std::string> worker_command;
  /// Directory for wire files; a unique subdirectory is created beneath
  /// it (and removed on destruction). Empty = the system temp directory.
  std::filesystem::path work_dir;
  /// When set, workers share this persistent result cache: each child
  /// slice request is content-addressed on its own, so repeating a run
  /// at the SAME shard count turns every slice into a disk hit (a
  /// different shard count slices differently and re-executes -- the
  /// parent-level Session cache still catches the whole request).
  /// Forwarded as --cache-dir.
  std::string cache_dir;
  /// Worker count WITHIN each worker process, forwarded as --jobs
  /// (0 = leave the workers at their hardware-concurrency default).
  /// With N shards each running M engine threads the host sees N*M
  /// threads, so a jobs cap is how single-host sharded runs avoid
  /// oversubscription.
  std::size_t jobs = 0;
  /// Test seam: launches one worker (argv[0] is the program), with
  /// stderr redirected to `stderr_file`, and returns its exit code.
  /// Empty = spawn a real process through the shell.
  std::function<int(const std::vector<std::string>& argv,
                    const std::filesystem::path& stderr_file)>
      spawn;
};

class SubprocessExecutor final : public Executor {
 public:
  explicit SubprocessExecutor(SubprocessOptions options = {});
  ~SubprocessExecutor() override;

  SubprocessExecutor(const SubprocessExecutor&) = delete;
  SubprocessExecutor& operator=(const SubprocessExecutor&) = delete;

  FindDesignResult run(const FindDesignRequest& req) override;
  SweepResult run(const SweepRequest& req) override;
  GridResult run(const GridRequest& req) override;
  InjectResult run(const InjectRequest& req) override;
  RankGatesResult run(const RankGatesRequest& req) override;
  StaResult run(const StaRequest& req) override;

  /// Total worker processes launched by this executor (observability;
  /// tests assert sharding actually happened).
  std::uint64_t workers_launched() const { return workers_launched_; }

 private:
  /// Ships every cell over the wire and returns their results in cell
  /// order. Throws on the first (lowest-index) failed cell.
  std::vector<Result> run_cells(const std::vector<Request>& cells);

  SubprocessOptions options_;
  std::filesystem::path run_dir_;   ///< unique, owned, removed on dtor
  std::uint64_t next_run_ = 0;
  std::uint64_t workers_launched_ = 0;
};

}  // namespace rchls::api

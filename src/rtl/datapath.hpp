// Structural data-path model of a synthesized Design: functional units
// (from the binding), a register file (left-edge over value lifetimes),
// per-unit operand multiplexers, and the cycle-by-cycle controller table.
//
// This is the micro-architecture view the paper stops short of but any
// adopter needs: it makes the resource sharing of a Design explicit and
// extends the area accounting beyond functional units (registers + muxes),
// which DESIGN.md lists as an ablation axis.
#pragma once

#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "hls/design.hpp"
#include "library/resource.hpp"

namespace rchls::rtl {

struct UnitPort {
  /// Distinct register sources observed at this operand port.
  std::vector<int> sources;
  /// Number of 2:1 multiplexers needed (max(0, sources - 1)).
  int mux_count() const {
    return sources.empty() ? 0 : static_cast<int>(sources.size()) - 1;
  }
};

struct DatapathUnit {
  bind::InstanceId instance = 0;
  std::string version_name;
  UnitPort port_a;
  UnitPort port_b;
};

struct MicroOp {
  dfg::NodeId op = 0;
  bind::InstanceId unit = 0;
  /// Destination register of the result (latched at completion).
  int dest_register = -1;
};

struct ControlStep {
  /// Operations STARTING at this step.
  std::vector<MicroOp> issue;
};

struct DatapathModel {
  std::vector<DatapathUnit> units;
  int register_count = 0;
  /// reg_of[node]: register holding the node's value (-1 never happens
  /// for valid designs).
  std::vector<int> reg_of;
  /// One entry per control step.
  std::vector<ControlStep> control;

  double unit_area = 0.0;      ///< functional units (the paper's metric)
  double register_area = 0.0;  ///< registers at `register_area_unit` each
  double mux_area = 0.0;       ///< 2:1 muxes at `mux_area_unit` each
  double total_area() const { return unit_area + register_area + mux_area; }
};

struct DatapathOptions {
  /// Area of one word-wide register / one word-wide 2:1 mux, in the
  /// library's normalized units (a ripple-carry adder == 1).
  double register_area_unit = 0.25;
  double mux_area_unit = 0.125;
};

/// Builds the structural model from a synthesized design.
DatapathModel build_datapath(const hls::Design& d, const dfg::Graph& g,
                             const library::ResourceLibrary& lib,
                             const DatapathOptions& options = {});

/// Human-readable controller microcode + inventory.
std::string to_string(const DatapathModel& m, const dfg::Graph& g);

}  // namespace rchls::rtl

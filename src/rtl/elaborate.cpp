#include "rtl/elaborate.hpp"

#include "netlist/compose.hpp"
#include "util/error.hpp"

namespace rchls::rtl {

namespace {

using netlist::GateId;
using netlist::Netlist;

/// Word of gate ids, LSB first.
using Word = std::vector<GateId>;

struct OperandSources {
  Word a;
  Word b;
};

/// Instantiates the version's unit and wires the operation semantics.
Word instance_op(Netlist& nl, const UnitMap& units,
                 const library::ResourceVersion& version, dfg::OpType op,
                 const Word& a, const Word& b, int width) {
  Netlist unit = units.build(version, width);

  // Flat input order follows the unit's input buses: adders are
  // (a, b, cin), multipliers (a, b).
  std::vector<GateId> drivers;
  if (version.cls == library::ResourceClass::kAdder) {
    bool subtract = op == dfg::OpType::kSub || op == dfg::OpType::kLt;
    drivers = a;
    for (GateId bit : b) {
      drivers.push_back(subtract ? nl.bnot(bit) : bit);
    }
    drivers.push_back(nl.add_const(subtract));  // cin = 1 for a + ~b + 1
  } else {
    drivers = a;
    drivers.insert(drivers.end(), b.begin(), b.end());
  }

  auto map = netlist::append(nl, unit, drivers);

  if (version.cls == library::ResourceClass::kAdder) {
    if (op == dfg::OpType::kLt) {
      // Unsigned a < b  <=>  no carry out of a + ~b + 1.
      GateId cout = map[unit.output_bus("cout").bits[0]];
      Word out(static_cast<std::size_t>(width), nl.add_const(false));
      out[0] = nl.bnot(cout);
      return out;
    }
    Word out;
    for (GateId bit : unit.output_bus("sum").bits) out.push_back(map[bit]);
    return out;
  }
  // Multiplier: truncate the 2w-bit product to the low word.
  Word out;
  const auto& prod = unit.output_bus("prod").bits;
  for (int i = 0; i < width; ++i) {
    out.push_back(map[prod[static_cast<std::size_t>(i)]]);
  }
  return out;
}

}  // namespace

Elaboration elaborate(const dfg::Graph& g,
                      const library::ResourceLibrary& lib,
                      std::span<const library::VersionId> version_of,
                      int width, const UnitMap& units) {
  if (version_of.size() != g.node_count()) {
    throw Error("elaborate: assignment size mismatch");
  }
  if (width < 2 || width > 32) {
    throw Error("elaborate: width must be in [2, 32]");
  }

  Elaboration e{Netlist(g.name() + "_elaborated"), {}, {}, {}};
  Netlist& nl = e.netlist;

  std::vector<Word> value(g.node_count());
  for (dfg::NodeId id : g.topological_order()) {
    const auto& preds = g.predecessors(id);
    if (preds.size() > 2) {
      throw Error("elaborate: operation '" + g.node(id).name +
                  "' has more than two operands");
    }
    OperandSources ops;
    auto operand = [&](std::size_t k) {
      if (k < preds.size()) return value[preds[k]];
      std::string name = g.node(id).name + "_in" + std::to_string(k);
      e.input_names.push_back(name);
      return nl.add_input_bus(name, width).bits;
    };
    ops.a = operand(0);
    ops.b = operand(1);

    const auto& version = lib.version(version_of[id]);
    if (version.cls != library::class_of(g.node(id).op)) {
      throw Error("elaborate: version class mismatch on '" +
                  g.node(id).name + "'");
    }
    value[id] =
        instance_op(nl, units, version, g.node(id).op, ops.a, ops.b, width);
    // Everything created while this operation elaborated -- its unit,
    // glue logic and inline operand input bits -- belongs to its version.
    e.gate_version.resize(nl.gate_count(), version_of[id]);
  }

  for (dfg::NodeId id : g.sinks()) {
    std::string name = g.node(id).name + "_out";
    nl.add_output_bus(name, value[id]);
    e.output_names.push_back(name);
  }
  nl.validate();
  return e;
}

std::vector<std::uint64_t> reference_eval(
    const dfg::Graph& g, int width,
    const std::unordered_map<std::string, std::uint64_t>& operands) {
  std::uint64_t mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  std::vector<std::uint64_t> value(g.node_count(), 0);
  for (dfg::NodeId id : g.topological_order()) {
    const auto& preds = g.predecessors(id);
    auto operand = [&](std::size_t k) -> std::uint64_t {
      if (k < preds.size()) return value[preds[k]];
      auto it = operands.find(g.node(id).name + "_in" + std::to_string(k));
      return it == operands.end() ? 0 : (it->second & mask);
    };
    std::uint64_t a = operand(0);
    std::uint64_t b = operand(1);
    switch (g.node(id).op) {
      case dfg::OpType::kAdd: value[id] = (a + b) & mask; break;
      case dfg::OpType::kSub: value[id] = (a - b) & mask; break;
      case dfg::OpType::kMul: value[id] = (a * b) & mask; break;
      case dfg::OpType::kLt: value[id] = (a & mask) < (b & mask); break;
    }
  }
  std::vector<std::uint64_t> out;
  for (dfg::NodeId id : g.sinks()) out.push_back(value[id]);
  return out;
}

}  // namespace rchls::rtl

// Mapping from resource-library versions to gate-level unit netlists.
// The paper's Table 1 names map onto the circuit generators of
// src/circuits; custom libraries can register their own generators.
#pragma once

#include <functional>
#include <string>

#include "library/resource.hpp"
#include "netlist/netlist.hpp"

namespace rchls::rtl {

/// Builds an arithmetic unit netlist of the given bit width.
using UnitGenerator = std::function<netlist::Netlist(int width)>;

/// Resolves generators by version name.
class UnitMap {
 public:
  /// A map pre-populated with the five paper components:
  /// adder_1/ripple_carry_adder, adder_2/brent_kung_adder,
  /// adder_3/kogge_stone_adder, mult_1/carry_save_multiplier,
  /// mult_2/leapfrog_multiplier (both the Table-1 names and the circuit
  /// names are registered).
  static UnitMap paper_units();

  /// Registers (or replaces) a generator for a version name.
  void set(const std::string& version_name, UnitGenerator gen);

  bool contains(const std::string& version_name) const;

  /// Builds the unit for a version; throws Error for unmapped names.
  netlist::Netlist build(const library::ResourceVersion& version,
                         int width) const;

 private:
  std::vector<std::pair<std::string, UnitGenerator>> generators_;
};

}  // namespace rchls::rtl

// Whole-design elaboration: expand a DFG with a version assignment into a
// single flat combinational netlist, instancing the assigned arithmetic
// unit for every operation (the spatial, fully-parallel equivalent of the
// scheduled data path -- exact for functional validation and for
// whole-design fault-injection studies).
//
// Port convention: every missing operand of an operation (a DFG node has
// at most two predecessors; absent ones are primary operands) becomes an
// input bus named "<node>_in0" / "<node>_in1". Every sink operation's
// result becomes an output bus named "<node>_out".
//
// Semantics per operation (width-w two's complement):
//   add: (a + b) mod 2^w
//   sub: (a - b) mod 2^w
//   mul: (a * b) mod 2^w       (low word of the 2w-bit product)
//   lt : unsigned a < b ? 1 : 0 (w-bit bus, bit 0 carries the flag)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfg/graph.hpp"
#include "library/resource.hpp"
#include "netlist/netlist.hpp"
#include "rtl/unit_map.hpp"

namespace rchls::rtl {

/// gate_version entry for gates not instanced from a library version
/// (there are none today -- every gate, including inline operand input
/// bits and glue logic, is created while some operation elaborates and
/// inherits that operation's version -- but consumers must not assume
/// that and should treat kNoVersion as "use the implicit unit arc").
inline constexpr library::VersionId kNoVersion =
    static_cast<library::VersionId>(-1);

struct Elaboration {
  netlist::Netlist netlist;
  /// Input bus names in creation order, "<node>_in<k>".
  std::vector<std::string> input_names;
  /// Output bus names, "<node>_out", one per DFG sink.
  std::vector<std::string> output_names;
  /// Per-gate provenance, size netlist.gate_count(): the library version
  /// whose instancing created the gate (glue gates -- operand inverters,
  /// carry-in constants, Lt flag logic -- inherit the operation's
  /// version), or kNoVersion. Feeds sta::DelayModel::from_library.
  std::vector<library::VersionId> gate_version;
};

/// Elaborates the design. Throws Error if a node has more than two
/// predecessors or a version has no registered unit generator.
Elaboration elaborate(const dfg::Graph& g,
                      const library::ResourceLibrary& lib,
                      std::span<const library::VersionId> version_of,
                      int width, const UnitMap& units = UnitMap::paper_units());

/// Software reference for the same semantics: computes each sink's value
/// from the named primary-operand values (keys matching
/// Elaboration::input_names; missing keys default to 0). Returns one value
/// per output bus, aligned with Elaboration::output_names.
std::vector<std::uint64_t> reference_eval(
    const dfg::Graph& g, int width,
    const std::unordered_map<std::string, std::uint64_t>& operands);

}  // namespace rchls::rtl

#include "rtl/datapath.hpp"

#include <algorithm>
#include <sstream>

#include "bind/registers.hpp"
#include "util/error.hpp"

namespace rchls::rtl {

namespace {

void add_source(UnitPort& port, int reg) {
  if (std::find(port.sources.begin(), port.sources.end(), reg) ==
      port.sources.end()) {
    port.sources.push_back(reg);
  }
}

}  // namespace

DatapathModel build_datapath(const hls::Design& d, const dfg::Graph& g,
                             const library::ResourceLibrary& lib,
                             const DatapathOptions& options) {
  hls::validate_design(d, g, lib);

  DatapathModel m;
  auto delays = hls::delays_for(g, lib, d.version_of);
  m.reg_of = bind::register_assignment(g, delays, d.schedule);
  m.register_count = 0;
  for (int r : m.reg_of) m.register_count = std::max(m.register_count, r + 1);

  // Units and operand ports. Operand k of an op reads the register of its
  // k-th predecessor; primary operands read the external bus (-1).
  for (bind::InstanceId i = 0; i < d.binding.instances.size(); ++i) {
    DatapathUnit unit;
    unit.instance = i;
    unit.version_name = lib.version(d.binding.instances[i].version).name;
    for (dfg::NodeId op : d.binding.instances[i].ops) {
      const auto& preds = g.predecessors(op);
      add_source(unit.port_a, preds.size() > 0 ? m.reg_of[preds[0]] : -1);
      add_source(unit.port_b, preds.size() > 1 ? m.reg_of[preds[1]] : -1);
    }
    m.units.push_back(std::move(unit));
  }

  // Controller table: ops indexed by start step.
  m.control.resize(static_cast<std::size_t>(d.latency));
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    MicroOp mop;
    mop.op = id;
    mop.unit = d.binding.instance_of[id];
    mop.dest_register = m.reg_of[id];
    m.control[static_cast<std::size_t>(d.schedule.start[id])].issue.push_back(
        mop);
  }

  // Area accounting.
  m.unit_area = d.area;
  m.register_area = options.register_area_unit * m.register_count;
  int muxes = 0;
  for (const auto& u : m.units) {
    muxes += u.port_a.mux_count() + u.port_b.mux_count();
  }
  m.mux_area = options.mux_area_unit * muxes;
  return m;
}

std::string to_string(const DatapathModel& m, const dfg::Graph& g) {
  std::ostringstream os;
  os << "datapath: " << m.units.size() << " units, " << m.register_count
     << " registers\n";
  for (const auto& u : m.units) {
    os << "  unit#" << u.instance << " " << u.version_name << " (mux "
       << u.port_a.mux_count() << "+" << u.port_b.mux_count() << ")\n";
  }
  os << "area: units " << m.unit_area << " + registers " << m.register_area
     << " + muxes " << m.mux_area << " = " << m.total_area() << "\n";
  os << "controller:\n";
  for (std::size_t step = 0; step < m.control.size(); ++step) {
    os << "  step " << step << ":";
    if (m.control[step].issue.empty()) os << " (idle)";
    for (const MicroOp& mop : m.control[step].issue) {
      os << " " << g.node(mop.op).name << "@unit" << mop.unit << "->r"
         << mop.dest_register;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rchls::rtl

#include "rtl/unit_map.hpp"

#include "circuits/adders.hpp"
#include "circuits/multipliers.hpp"
#include "util/error.hpp"

namespace rchls::rtl {

UnitMap UnitMap::paper_units() {
  UnitMap m;
  m.set("adder_1", &circuits::ripple_carry_adder);
  m.set("ripple_carry_adder", &circuits::ripple_carry_adder);
  m.set("adder_2", &circuits::brent_kung_adder);
  m.set("brent_kung_adder", &circuits::brent_kung_adder);
  m.set("adder_3", &circuits::kogge_stone_adder);
  m.set("kogge_stone_adder", &circuits::kogge_stone_adder);
  m.set("mult_1", &circuits::carry_save_multiplier);
  m.set("carry_save_multiplier", &circuits::carry_save_multiplier);
  m.set("mult_2", &circuits::leapfrog_multiplier);
  m.set("leapfrog_multiplier", &circuits::leapfrog_multiplier);
  return m;
}

void UnitMap::set(const std::string& version_name, UnitGenerator gen) {
  for (auto& [name, g] : generators_) {
    if (name == version_name) {
      g = std::move(gen);
      return;
    }
  }
  generators_.emplace_back(version_name, std::move(gen));
}

bool UnitMap::contains(const std::string& version_name) const {
  for (const auto& [name, g] : generators_) {
    if (name == version_name) return true;
  }
  return false;
}

netlist::Netlist UnitMap::build(const library::ResourceVersion& version,
                                int width) const {
  for (const auto& [name, gen] : generators_) {
    if (name == version.name) return gen(width);
  }
  throw Error("UnitMap: no netlist generator registered for version '" +
              version.name + "'; call UnitMap::set() for custom libraries");
}

}  // namespace rchls::rtl

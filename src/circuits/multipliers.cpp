#include "circuits/multipliers.hpp"

#include <vector>

#include "circuits/adders.hpp"
#include "util/error.hpp"

namespace rchls::circuits {

using netlist::GateId;
using netlist::Netlist;

namespace {

/// columns[c] holds the bits of weight 2^c awaiting summation.
using Columns = std::vector<std::vector<GateId>>;

Columns partial_products(Netlist& nl, int width) {
  auto a = nl.add_input_bus("a", width).bits;
  auto b = nl.add_input_bus("b", width).bits;
  Columns cols(static_cast<std::size_t>(2 * width));
  for (int i = 0; i < width; ++i) {
    for (int j = 0; j < width; ++j) {
      cols[static_cast<std::size_t>(i + j)].push_back(
          nl.band(a[static_cast<std::size_t>(j)],
                  b[static_cast<std::size_t>(i)]));
    }
  }
  return cols;
}

/// One 3:2 / 2:2 compression pass over all columns. In Wallace style every
/// group of three bits in a column is compressed in parallel per level.
Columns compress_once(Netlist& nl, const Columns& cols) {
  Columns next(cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto& bits = cols[c];
    std::size_t i = 0;
    while (bits.size() - i >= 3) {
      BitPair fa = full_adder(nl, bits[i], bits[i + 1], bits[i + 2]);
      next[c].push_back(fa.sum);
      if (c + 1 < next.size()) next[c + 1].push_back(fa.carry);
      i += 3;
    }
    if (bits.size() - i == 2) {
      BitPair ha = half_adder(nl, bits[i], bits[i + 1]);
      next[c].push_back(ha.sum);
      if (c + 1 < next.size()) next[c + 1].push_back(ha.carry);
      i += 2;
    }
    if (bits.size() - i == 1) next[c].push_back(bits[i]);
  }
  return next;
}

bool needs_compression(const Columns& cols) {
  for (const auto& c : cols) {
    if (c.size() > 2) return true;
  }
  return false;
}

/// Ripple-carry vector merge over two remaining rows.
std::vector<GateId> ripple_merge(Netlist& nl, const Columns& cols) {
  std::vector<GateId> out;
  GateId carry = nl.add_const(false);
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto& bits = cols[c];
    if (bits.empty()) {
      out.push_back(carry);
      carry = nl.add_const(false);
    } else if (bits.size() == 1) {
      BitPair ha = half_adder(nl, bits[0], carry);
      out.push_back(ha.sum);
      carry = ha.carry;
    } else {
      BitPair fa = full_adder(nl, bits[0], bits[1], carry);
      out.push_back(fa.sum);
      carry = fa.carry;
    }
  }
  return out;
}

/// Kogge-Stone carry-propagate merge over two remaining rows.
std::vector<GateId> kogge_stone_merge(Netlist& nl, const Columns& cols) {
  std::size_t n = cols.size();
  GateId zero = nl.add_const(false);
  std::vector<GateId> x(n, zero);
  std::vector<GateId> y(n, zero);
  for (std::size_t c = 0; c < n; ++c) {
    if (!cols[c].empty()) x[c] = cols[c][0];
    if (cols[c].size() >= 2) y[c] = cols[c][1];
  }

  struct GPPair {
    GateId g;
    GateId p;
  };
  std::vector<GPPair> span;
  std::vector<GateId> p_bits;
  span.push_back({zero, zero});  // carry-in element: no carry into bit 0
  for (std::size_t i = 0; i < n; ++i) {
    GateId p = nl.bxor(x[i], y[i]);
    span.push_back({nl.band(x[i], y[i]), p});
    p_bits.push_back(p);
  }
  std::size_t m = span.size();
  for (std::size_t d = 1; d < m; d *= 2) {
    std::vector<GPPair> next = span;
    for (std::size_t i = d; i < m; ++i) {
      next[i] = {nl.bor(span[i].g, nl.band(span[i].p, span[i - d].g)),
                 nl.band(span[i].p, span[i - d].p)};
    }
    span = std::move(next);
  }
  std::vector<GateId> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = nl.bxor(p_bits[i], span[i].g);
  return out;
}

void check_width(int width) {
  if (width < 1 || width > 32) {
    throw Error("multiplier width must be in [1, 32]");
  }
}

}  // namespace

Netlist carry_save_multiplier(int width) {
  check_width(width);
  Netlist nl("carry_save_multiplier_" + std::to_string(width));
  Columns cols = partial_products(nl, width);

  // Array-style: compress one partial-product row into the running
  // sum/carry pair per step, giving the linear depth of a carry-save array.
  // compress_once reduces each column by at most floor(size/3) + ... per
  // call; applying it until <= 2 rows remain with the *sequential* variant
  // below preserves the linear structure: we fold exactly one excess bit
  // per column per pass.
  while (needs_compression(cols)) {
    Columns next(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const auto& bits = cols[c];
      if (bits.size() > 2) {
        // Fold the first three bits, keep the rest for later passes.
        BitPair fa = full_adder(nl, bits[0], bits[1], bits[2]);
        next[c].push_back(fa.sum);
        if (c + 1 < next.size()) next[c + 1].push_back(fa.carry);
        for (std::size_t i = 3; i < bits.size(); ++i) {
          next[c].push_back(bits[i]);
        }
      } else {
        // Append (never assign): the previous column may already have
        // deposited a carry into next[c].
        next[c].insert(next[c].end(), bits.begin(), bits.end());
      }
    }
    cols = std::move(next);
  }
  nl.add_output_bus("prod", ripple_merge(nl, cols));
  return nl;
}

Netlist leapfrog_multiplier(int width) {
  check_width(width);
  Netlist nl("leapfrog_multiplier_" + std::to_string(width));
  Columns cols = partial_products(nl, width);
  while (needs_compression(cols)) cols = compress_once(nl, cols);
  nl.add_output_bus("prod", kogge_stone_merge(nl, cols));
  return nl;
}

}  // namespace rchls::circuits

#include "circuits/adders.hpp"

#include <vector>

#include "util/error.hpp"

namespace rchls::circuits {

using netlist::GateId;
using netlist::Netlist;

BitPair full_adder(Netlist& nl, GateId a, GateId b, GateId cin) {
  GateId axb = nl.bxor(a, b);
  GateId sum = nl.bxor(axb, cin);
  GateId carry = nl.bor(nl.band(a, b), nl.band(axb, cin));
  return {sum, carry};
}

BitPair half_adder(Netlist& nl, GateId a, GateId b) {
  return {nl.bxor(a, b), nl.band(a, b)};
}

namespace {

struct Ports {
  std::vector<GateId> a;
  std::vector<GateId> b;
  GateId cin;
};

Ports make_adder_ports(Netlist& nl, int width) {
  if (width < 1 || width > 64) {
    throw Error("adder width must be in [1, 64]");
  }
  Ports p;
  p.a = nl.add_input_bus("a", width).bits;
  p.b = nl.add_input_bus("b", width).bits;
  p.cin = nl.add_input_bus("cin", 1).bits[0];
  return p;
}

/// A generate/propagate pair spanning a contiguous bit range.
struct GP {
  GateId g;
  GateId p;
};

/// Prefix combine: `hi` spans the more significant range, `lo` the less
/// significant adjacent range. G = Gh | (Ph & Gl), P = Ph & Pl.
GP combine(Netlist& nl, GP hi, GP lo) {
  return {nl.bor(hi.g, nl.band(hi.p, lo.g)), nl.band(hi.p, lo.p)};
}

/// Shared tail of both prefix adders: given the inclusive prefix array over
/// the n+1 carry elements (element 0 is cin), wire sums and outputs.
/// prefix[i].g is the carry INTO bit i; prefix[n].g is cout.
void finish_prefix_adder(Netlist& nl, const std::vector<GateId>& p_bits,
                         const std::vector<GP>& prefix) {
  int n = static_cast<int>(p_bits.size());
  std::vector<GateId> sum(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    sum[static_cast<std::size_t>(i)] =
        nl.bxor(p_bits[static_cast<std::size_t>(i)],
                prefix[static_cast<std::size_t>(i)].g);
  }
  nl.add_output_bus("sum", sum);
  nl.add_output_bus("cout", {prefix[static_cast<std::size_t>(n)].g});
}

/// Builds the n+1 leaf carry elements for a prefix adder. Element 0 carries
/// cin (propagate 0); element i+1 is (g_i, p_i) of bit i. Also returns the
/// raw propagate bits needed for the sum XORs.
void make_leaves(Netlist& nl, const Ports& ports, std::vector<GP>& leaves,
                 std::vector<GateId>& p_bits) {
  int n = static_cast<int>(ports.a.size());
  GateId zero = nl.add_const(false);
  leaves.push_back({ports.cin, zero});
  for (int i = 0; i < n; ++i) {
    std::size_t ui = static_cast<std::size_t>(i);
    GateId g = nl.band(ports.a[ui], ports.b[ui]);
    GateId p = nl.bxor(ports.a[ui], ports.b[ui]);
    leaves.push_back({g, p});
    p_bits.push_back(p);
  }
}

}  // namespace

Netlist ripple_carry_adder(int width) {
  Netlist nl("ripple_carry_adder_" + std::to_string(width));
  Ports ports = make_adder_ports(nl, width);

  std::vector<GateId> sum;
  GateId carry = ports.cin;
  for (int i = 0; i < width; ++i) {
    std::size_t ui = static_cast<std::size_t>(i);
    BitPair fa = full_adder(nl, ports.a[ui], ports.b[ui], carry);
    sum.push_back(fa.sum);
    carry = fa.carry;
  }
  nl.add_output_bus("sum", sum);
  nl.add_output_bus("cout", {carry});
  return nl;
}

Netlist kogge_stone_adder(int width) {
  Netlist nl("kogge_stone_adder_" + std::to_string(width));
  Ports ports = make_adder_ports(nl, width);

  std::vector<GP> span;
  std::vector<GateId> p_bits;
  make_leaves(nl, ports, span, p_bits);
  std::size_t m = span.size();

  // Kogge-Stone: every element combines with the element `d` positions
  // lower at each doubling level, producing the full inclusive prefix in
  // ceil(log2(m)) levels.
  for (std::size_t d = 1; d < m; d *= 2) {
    std::vector<GP> next = span;
    for (std::size_t i = d; i < m; ++i) {
      next[i] = combine(nl, span[i], span[i - d]);
    }
    span = std::move(next);
  }
  finish_prefix_adder(nl, p_bits, span);
  return nl;
}

Netlist brent_kung_adder(int width) {
  Netlist nl("brent_kung_adder_" + std::to_string(width));
  Ports ports = make_adder_ports(nl, width);

  std::vector<GP> span;
  std::vector<GateId> p_bits;
  make_leaves(nl, ports, span, p_bits);
  std::size_t m = span.size();

  // Up-sweep: build a binary tree of spans ending at indices 2d-1, 4d-1, ...
  for (std::size_t d = 1; 2 * d <= m; d *= 2) {
    for (std::size_t i = 2 * d - 1; i < m; i += 2 * d) {
      span[i] = combine(nl, span[i], span[i - d]);
    }
  }
  // Down-sweep: fill in the remaining inclusive prefixes, starting at the
  // largest power of two <= m (which can exceed the last up-sweep level
  // when m is not a power of two).
  std::size_t dstart = 1;
  while (dstart * 2 <= m) dstart *= 2;
  for (std::size_t d = dstart; d >= 2; d /= 2) {
    for (std::size_t i = d + d / 2 - 1; i < m; i += d) {
      span[i] = combine(nl, span[i], span[i - d / 2]);
    }
  }
  finish_prefix_adder(nl, p_bits, span);
  return nl;
}

}  // namespace rchls::circuits

// Structural redundancy transforms: majority voters and N-modular
// replication of whole netlists. These realize, at the gate level, the NMR
// structures of paper Section 5 (Fig. 4(b)) that the Orailoglu-Karri
// baseline [3] relies on.
#pragma once

#include "netlist/netlist.hpp"

namespace rchls::circuits {

/// A standalone bitwise majority voter: input buses "in0", "in1", "in2"
/// (width bits each), output bus "out".
netlist::Netlist majority_voter(int width);

/// Replicates the logic of `nl` `copies` times (sharing the primary
/// inputs), and votes each output bit across replicas. `copies` must be odd
/// and >= 3. Output buses keep their names.
netlist::Netlist replicate_with_voting(const netlist::Netlist& nl,
                                       int copies = 3);

}  // namespace rchls::circuits

#include "circuits/redundancy.hpp"

#include <vector>

#include "util/error.hpp"

namespace rchls::circuits {

using netlist::Bus;
using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

namespace {

/// Majority (>= ceil(n/2 + 0.5) of n, i.e. k-of-n with k = (n+1)/2) as a
/// two-level OR-of-ANDs over all k-subsets. n is small (3/5/7), so the
/// explicit expansion stays cheap and, unlike an adder-tree count, keeps
/// the voter's logic depth minimal.
GateId majority(Netlist& nl, const std::vector<GateId>& bits) {
  std::size_t n = bits.size();
  std::size_t k = n / 2 + 1;
  GateId result = 0;
  bool have_result = false;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) != k) continue;
    GateId term = 0;
    bool have_term = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      term = have_term ? nl.band(term, bits[i]) : bits[i];
      have_term = true;
    }
    result = have_result ? nl.bor(result, term) : term;
    have_result = true;
  }
  return result;
}

}  // namespace

Netlist majority_voter(int width) {
  if (width < 1 || width > 64) throw Error("voter width must be in [1, 64]");
  Netlist nl("majority_voter_" + std::to_string(width));
  auto in0 = nl.add_input_bus("in0", width).bits;
  auto in1 = nl.add_input_bus("in1", width).bits;
  auto in2 = nl.add_input_bus("in2", width).bits;
  std::vector<GateId> out;
  for (int i = 0; i < width; ++i) {
    std::size_t u = static_cast<std::size_t>(i);
    out.push_back(nl.maj3(in0[u], in1[u], in2[u]));
  }
  nl.add_output_bus("out", out);
  return nl;
}

Netlist replicate_with_voting(const Netlist& src, int copies) {
  if (copies < 3 || copies % 2 == 0 || copies > 7) {
    throw Error("replicate_with_voting: copies must be odd, in [3, 7]");
  }
  src.validate();

  Netlist nl(src.name() + "_nmr" + std::to_string(copies));

  // Shared primary inputs, reproduced bus by bus.
  std::vector<GateId> shared_inputs;
  for (const Bus& bus : src.input_buses()) {
    Bus copy = nl.add_input_bus(bus.name, static_cast<int>(bus.bits.size()));
    shared_inputs.insert(shared_inputs.end(), copy.bits.begin(),
                         copy.bits.end());
  }

  // Map src input gate id -> shared input gate id.
  std::vector<GateId> input_map(src.gate_count(), 0);
  const auto& src_inputs = src.input_bits();
  for (std::size_t i = 0; i < src_inputs.size(); ++i) {
    input_map[src_inputs[i]] = shared_inputs[i];
  }

  // Per replica: clone every non-input gate; inputs resolve to the shared
  // set. gate-id order is a topological order so a single pass suffices.
  std::vector<std::vector<GateId>> replica_map(
      static_cast<std::size_t>(copies),
      std::vector<GateId>(src.gate_count(), 0));
  for (int r = 0; r < copies; ++r) {
    auto& map = replica_map[static_cast<std::size_t>(r)];
    for (GateId id = 0; id < src.gate_count(); ++id) {
      const Gate& g = src.gate(id);
      switch (netlist::fanin_count(g.kind)) {
        case 0:
          map[id] = g.kind == GateKind::kInput
                        ? input_map[id]
                        : nl.add_const(g.kind == GateKind::kConst1);
          break;
        case 1:
          map[id] = nl.add_unary(g.kind, map[g.fanin0]);
          break;
        default:
          map[id] = nl.add_binary(g.kind, map[g.fanin0], map[g.fanin1]);
          break;
      }
    }
  }

  // Vote each output bit across replicas.
  for (const Bus& bus : src.output_buses()) {
    std::vector<GateId> voted;
    for (GateId bit : bus.bits) {
      std::vector<GateId> candidates;
      for (int r = 0; r < copies; ++r) {
        candidates.push_back(replica_map[static_cast<std::size_t>(r)][bit]);
      }
      voted.push_back(majority(nl, candidates));
    }
    nl.add_output_bus(bus.name, voted);
  }
  return nl;
}

}  // namespace rchls::circuits

// Generators for the multiplier architectures of Section 4: the carry-save
// array multiplier (Table 1 "Multiplier 1") and the "leapfrog" multiplier
// (Table 1 "Multiplier 2").
//
// The paper gives no netlist for its leapfrog multiplier (no open reference
// exists); per DESIGN.md we substitute a Wallace-tree reduction with a
// Kogge-Stone final adder, which plays the same library role: the fast,
// large, less reliable multiplier version.
//
// Both generators produce input buses "a", "b" (n bits each) and an output
// bus "prod" (2n bits).
#pragma once

#include "netlist/netlist.hpp"

namespace rchls::circuits {

/// Linear array of carry-save adder rows with a ripple vector-merge adder:
/// small and slow (Table 1 Multiplier 1).
netlist::Netlist carry_save_multiplier(int width);

/// Wallace-tree partial-product reduction with a Kogge-Stone final adder:
/// fast and large (Table 1 Multiplier 2, "leapfrog").
netlist::Netlist leapfrog_multiplier(int width);

}  // namespace rchls::circuits

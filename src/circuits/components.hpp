// By-name factory over the arithmetic circuit generators -- the single
// registry behind `rchls inject <component>` and the scenario file
// `inject` / `rank_gates` actions, so every declarative surface accepts
// the same component names.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rchls::circuits {

/// Canonical generator names, in Table 1 order: ripple_carry_adder,
/// brent_kung_adder, kogge_stone_adder, carry_save_multiplier,
/// leapfrog_multiplier.
std::vector<std::string> component_names();

/// True when `name` is one of component_names().
bool is_component(const std::string& name);

/// Builds the named circuit at the given operand bit width (>= 1).
/// Throws Error for unknown names or non-positive widths.
netlist::Netlist component_by_name(const std::string& name, int width);

}  // namespace rchls::circuits

#include "circuits/components.hpp"

#include "circuits/adders.hpp"
#include "circuits/multipliers.hpp"
#include "util/error.hpp"

namespace rchls::circuits {

namespace {

// The one registry: names(), is_component() and component_by_name() all
// read this table, so adding a generator is a single-line change.
struct Entry {
  const char* name;
  netlist::Netlist (*make)(int width);
};

constexpr Entry kComponents[] = {
    {"ripple_carry_adder", ripple_carry_adder},
    {"brent_kung_adder", brent_kung_adder},
    {"kogge_stone_adder", kogge_stone_adder},
    {"carry_save_multiplier", carry_save_multiplier},
    {"leapfrog_multiplier", leapfrog_multiplier},
};

}  // namespace

std::vector<std::string> component_names() {
  std::vector<std::string> out;
  for (const auto& e : kComponents) out.emplace_back(e.name);
  return out;
}

bool is_component(const std::string& name) {
  for (const auto& e : kComponents) {
    if (name == e.name) return true;
  }
  return false;
}

netlist::Netlist component_by_name(const std::string& name, int width) {
  if (width < 1) {
    throw Error("component_by_name: width must be >= 1");
  }
  for (const auto& e : kComponents) {
    if (name == e.name) return e.make(width);
  }
  throw Error("unknown component '" + name + "'");
}

}  // namespace rchls::circuits

// Generators for the adder architectures characterized in Section 4 of the
// paper: ripple-carry (Table 1 "Adder 1"), Brent-Kung ("Adder 2"), and
// Kogge-Stone ("Adder 3").
//
// All generators produce a Netlist with input buses "a" (n bits), "b"
// (n bits), "cin" (1 bit) and output buses "sum" (n bits), "cout" (1 bit).
#pragma once

#include "netlist/netlist.hpp"

namespace rchls::circuits {

/// Linear carry chain: smallest area, longest delay (Table 1 Adder 1).
netlist::Netlist ripple_carry_adder(int width);

/// Brent-Kung parallel-prefix adder: minimal prefix-cell count among
/// log-depth adders (Table 1 Adder 2).
netlist::Netlist brent_kung_adder(int width);

/// Kogge-Stone parallel-prefix adder: minimum logic depth, maximal wiring
/// and cell count (Table 1 Adder 3).
netlist::Netlist kogge_stone_adder(int width);

/// Full adder on three existing bits; returns {sum, carry}.
struct BitPair {
  netlist::GateId sum;
  netlist::GateId carry;
};
BitPair full_adder(netlist::Netlist& nl, netlist::GateId a, netlist::GateId b,
                   netlist::GateId cin);
/// Half adder on two existing bits; returns {sum, carry}.
BitPair half_adder(netlist::Netlist& nl, netlist::GateId a,
                   netlist::GateId b);

}  // namespace rchls::circuits

#include "ser/characterize.hpp"

#include <algorithm>
#include <cmath>

#include "circuits/adders.hpp"
#include "circuits/multipliers.hpp"
#include "netlist/stats.hpp"
#include "util/error.hpp"

namespace rchls::ser {

std::vector<ComponentCharacterization> paper_characterization() {
  SoftErrorModel model = SoftErrorModel::paper_calibrated();

  // The paper publishes Qcritical for the three adders. Table 1 assigns the
  // carry-save multiplier the anchor reliability (0.999) and the leapfrog
  // multiplier the Brent-Kung reliability (0.969); their implied charges
  // under the calibrated model follow from the inverse map.
  double qc_mult1 = model.critical_charge_for(0.999);
  double qc_mult2 = model.critical_charge_for(0.969);

  auto entry = [&](std::string name, ComponentClass cls, double area,
                   int delay, double qc) {
    ComponentCharacterization c;
    c.name = std::move(name);
    c.cls = cls;
    c.area_units = area;
    c.delay_cycles = delay;
    c.qcritical = qc;
    c.reliability = model.reliability(qc);
    return c;
  };

  return {
      entry("ripple_carry_adder", ComponentClass::kAdder, 1, 2,
            PaperCharges::kRippleCarry),
      entry("brent_kung_adder", ComponentClass::kAdder, 2, 1,
            PaperCharges::kBrentKung),
      entry("kogge_stone_adder", ComponentClass::kAdder, 4, 1,
            PaperCharges::kKoggeStone),
      entry("carry_save_multiplier", ComponentClass::kMultiplier, 2, 2,
            qc_mult1),
      entry("leapfrog_multiplier", ComponentClass::kMultiplier, 4, 1,
            qc_mult2),
  };
}

std::vector<ComponentCharacterization> characterize_components(
    const CharacterizeConfig& config) {
  struct Spec {
    const char* name;
    ComponentClass cls;
    netlist::Netlist nl;
    bool single_cycle;
  };
  std::vector<Spec> specs;
  specs.push_back({"ripple_carry_adder", ComponentClass::kAdder,
                   circuits::ripple_carry_adder(config.width), false});
  specs.push_back({"brent_kung_adder", ComponentClass::kAdder,
                   circuits::brent_kung_adder(config.width), true});
  specs.push_back({"kogge_stone_adder", ComponentClass::kAdder,
                   circuits::kogge_stone_adder(config.width), true});
  specs.push_back({"carry_save_multiplier", ComponentClass::kMultiplier,
                   circuits::carry_save_multiplier(config.width), false});
  specs.push_back({"leapfrog_multiplier", ComponentClass::kMultiplier,
                   circuits::leapfrog_multiplier(config.width), true});

  // The clock period is set by the deepest component that Table 1 treats as
  // single-cycle; multi-cycle components then occupy
  // ceil(depth / period) cycles.
  double period = 0.0;
  std::vector<netlist::Stats> stats;
  for (const Spec& s : specs) {
    stats.push_back(netlist::compute_stats(s.nl));
    if (s.single_cycle) period = std::max(period, stats.back().depth);
  }
  if (!(period > 0.0)) throw Error("characterize: degenerate clock period");

  // Relative SER: strikes arrive per unit sensitive area (∝ gate count) and
  // propagate with the measured logical sensitivity. The spec loop stays
  // sequential on purpose: each inject_campaign already parallelizes its
  // trial chunks across the configured workers, and nesting a second
  // parallel region here would only oversubscribe them.
  std::vector<InjectionResult> inj;
  for (const Spec& s : specs) {
    inj.push_back(inject_campaign(s.nl, config.injection));
  }
  double ser_ref =
      static_cast<double>(stats[0].logic_gates) * inj[0].susceptibility;
  if (!(ser_ref > 0.0)) {
    throw Error("characterize: reference circuit showed no susceptibility; "
                "increase injection trials");
  }

  double area_ref = stats[0].area;
  SoftErrorModel model = SoftErrorModel::paper_calibrated();

  std::vector<ComponentCharacterization> out;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ComponentCharacterization c;
    c.name = specs[i].name;
    c.cls = specs[i].cls;
    c.gate_count = stats[i].logic_gates;
    c.area_units = stats[i].area / area_ref;
    c.delay_cycles =
        static_cast<int>(std::ceil(stats[i].depth / period - 1e-9));
    c.logical_sensitivity = inj[i].logical_sensitivity;
    double ser_i =
        static_cast<double>(stats[i].logic_gates) * inj[i].susceptibility;
    // A campaign can in principle observe zero propagated strikes on a tiny
    // circuit; floor the ratio so the reliability stays inside (0, 1).
    double ratio = std::max(ser_i / ser_ref, 1e-9);
    c.reliability = reliability_from_ser_ratio(kAnchorReliability, ratio);
    c.qcritical = model.critical_charge_for(c.reliability);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<GateSensitivity> rank_gate_sensitivities(
    const netlist::Netlist& nl, const InjectionConfig& config) {
  std::vector<GateSensitivity> gates = inject_all_gates(nl, config);
  std::sort(gates.begin(), gates.end(),
            [](const GateSensitivity& a, const GateSensitivity& b) {
              if (a.result.propagated != b.result.propagated) {
                return a.result.propagated > b.result.propagated;
              }
              return a.gate < b.gate;
            });
  return gates;
}

}  // namespace rchls::ser

#include "ser/fault_injection.hpp"

#include <cmath>

#include "netlist/sim.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "util/error.hpp"

namespace rchls::ser {

namespace {

using netlist::GateId;
using netlist::Netlist;
using netlist::Simulator;

std::vector<GateId> logic_gates(const Netlist& nl) {
  std::vector<GateId> ids;
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    if (netlist::fanin_count(nl.gate(id).kind) > 0) ids.push_back(id);
  }
  return ids;
}

/// Runs the campaign in lane-aligned chunks, striking `pick_gate(pass)` in
/// every lane of each 64-lane evaluation, and accumulates how many lanes
/// saw an output corruption.
///
/// Each chunk draws from its own Rng stream derived from (seed, chunk
/// index) and chunk counts are merged in chunk order, so the result is
/// bit-identical at every parallel::Config worker count.
template <typename PickGate>
InjectionResult run_campaign(const Netlist& nl, const InjectionConfig& config,
                             PickGate&& pick_gate) {
  if (config.trials == 0) throw Error("inject: trials must be positive");
  if (config.electrical_derating < 0 || config.electrical_derating > 1 ||
      config.latching_window_derating < 0 ||
      config.latching_window_derating > 1) {
    throw Error("inject: derating factors must lie in [0, 1]");
  }

  auto chunks = parallel::partition_trials(config.trials, config.seed);
  std::vector<std::size_t> chunk_propagated(chunks.size(), 0);
  parallel::parallel_for(chunks.size(), [&](std::size_t ci) {
    const parallel::TrialChunk& chunk = chunks[ci];
    Simulator sim(nl);
    Rng rng(chunk.seed);
    std::vector<std::uint64_t> inputs(nl.input_bits().size());
    std::size_t passes = chunk.trials / parallel::kLanes;
    std::size_t first_pass = chunk.first_trial / parallel::kLanes;
    std::size_t propagated = 0;
    for (std::size_t pass = 0; pass < passes; ++pass) {
      for (auto& w : inputs) w = rng.next_u64();

      GateId victim = pick_gate(first_pass + pass, rng);
      auto golden = sim.output_words(sim.run(inputs));
      auto faulty =
          sim.output_words(sim.run(inputs, netlist::Fault{victim, ~0ULL}));

      std::uint64_t corrupted = 0;
      for (std::size_t i = 0; i < golden.size(); ++i) {
        corrupted |= golden[i] ^ faulty[i];
      }
      propagated += static_cast<std::size_t>(__builtin_popcountll(corrupted));
    }
    chunk_propagated[ci] = propagated;
  });

  InjectionResult result;
  for (const auto& chunk : chunks) result.trials += chunk.trials;
  for (std::size_t p : chunk_propagated) result.propagated += p;

  double n = static_cast<double>(result.trials);
  result.logical_sensitivity = static_cast<double>(result.propagated) / n;
  result.susceptibility = result.logical_sensitivity *
                          config.electrical_derating *
                          config.latching_window_derating;
  double p = result.logical_sensitivity;
  result.half_width_95 = 1.96 * std::sqrt(std::max(p * (1.0 - p), 0.0) / n);
  return result;
}

}  // namespace

InjectionResult inject_campaign(const Netlist& nl,
                                const InjectionConfig& config) {
  auto gates = logic_gates(nl);
  if (gates.empty()) throw Error("inject_campaign: netlist has no logic");
  return run_campaign(nl, config, [&gates](std::size_t, Rng& rng) {
    return gates[rng.next_below(gates.size())];
  });
}

InjectionResult inject_gate(const Netlist& nl, GateId gate,
                            const InjectionConfig& config) {
  if (gate >= nl.gate_count()) throw Error("inject_gate: gate out of range");
  if (netlist::fanin_count(nl.gate(gate).kind) == 0) {
    throw Error("inject_gate: target must be a logic gate");
  }
  return run_campaign(nl, config,
                      [gate](std::size_t, Rng&) { return gate; });
}

}  // namespace rchls::ser

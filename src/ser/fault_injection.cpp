#include "ser/fault_injection.hpp"

#include <cmath>

#include "netlist/fault_engine.hpp"
#include "netlist/sim.hpp"
#include "netlist/topology.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "util/error.hpp"

namespace rchls::ser {

namespace {

using netlist::FaultEngine;
using netlist::GateId;
using netlist::Netlist;
using netlist::Simulator;
using netlist::Topology;

void validate_config(const InjectionConfig& config) {
  if (config.trials == 0) throw Error("inject: trials must be positive");
  if (config.electrical_derating < 0 || config.electrical_derating > 1 ||
      config.latching_window_derating < 0 ||
      config.latching_window_derating > 1) {
    throw Error("inject: derating factors must lie in [0, 1]");
  }
}

/// Wilson score 95% half-width for `propagated` successes in `n` trials.
double wilson_half_width_95(std::size_t propagated, std::size_t n) {
  constexpr double z = 1.96;
  double nn = static_cast<double>(n);
  double p = static_cast<double>(propagated) / nn;
  double z2_over_n = z * z / nn;
  return z / (1.0 + z2_over_n) *
         std::sqrt(std::max(p * (1.0 - p), 0.0) / nn +
                   z2_over_n / (4.0 * nn));
}

InjectionResult finalize(std::size_t trials, std::size_t propagated,
                         const InjectionConfig& config) {
  InjectionResult result;
  result.trials = trials;
  result.propagated = propagated;
  double n = static_cast<double>(trials);
  result.logical_sensitivity = static_cast<double>(propagated) / n;
  result.susceptibility = result.logical_sensitivity *
                          config.electrical_derating *
                          config.latching_window_derating;
  result.half_width_95 = wilson_half_width_95(propagated, trials);
  return result;
}

/// Runs the campaign in lane-aligned chunks, striking `pick_gate(pass)` in
/// every lane of each 64-lane evaluation, and accumulates how many lanes
/// saw an output corruption. The 64 trials of a pass share one victim and
/// one golden evaluation; the strike itself resimulates only the victim's
/// fanout cone on the FaultEngine.
///
/// The netlist is validated and its Topology computed ONCE, before the
/// parallel region: worker chunks share them read-only. Each chunk draws
/// from its own Rng stream derived from (seed, chunk index) and chunk
/// counts are merged in chunk order, so the result is bit-identical at
/// every parallel::Config worker count.
template <typename PickGate>
InjectionResult run_campaign(const Netlist& nl, const Topology& topo,
                             const InjectionConfig& config,
                             PickGate&& pick_gate) {
  validate_config(config);

  auto chunks = parallel::partition_trials(config.trials, config.seed);
  std::vector<std::size_t> chunk_propagated(chunks.size(), 0);
  parallel::parallel_for(chunks.size(), [&](std::size_t ci) {
    const parallel::TrialChunk& chunk = chunks[ci];
    FaultEngine engine(nl, topo);
    Rng rng(chunk.seed);
    std::vector<std::uint64_t> inputs(nl.input_bits().size());
    std::size_t passes = chunk.trials / parallel::kLanes;
    std::size_t first_pass = chunk.first_trial / parallel::kLanes;
    std::size_t propagated = 0;
    for (std::size_t pass = 0; pass < passes; ++pass) {
      for (auto& w : inputs) w = rng.next_u64();

      GateId victim = pick_gate(first_pass + pass, rng);
      engine.set_inputs(inputs);
      std::uint64_t corrupted =
          engine.inject(netlist::Fault{victim, ~0ULL});
      propagated += static_cast<std::size_t>(__builtin_popcountll(corrupted));
    }
    chunk_propagated[ci] = propagated;
  });

  std::size_t trials = 0;
  std::size_t propagated = 0;
  for (const auto& chunk : chunks) trials += chunk.trials;
  for (std::size_t p : chunk_propagated) propagated += p;
  return finalize(trials, propagated, config);
}

}  // namespace

InjectionResult inject_campaign(const Netlist& nl,
                                const InjectionConfig& config) {
  nl.validate();
  const Topology topo(nl);
  const auto& gates = topo.logic_gates();
  if (gates.empty()) throw Error("inject_campaign: netlist has no logic");
  return run_campaign(nl, topo, config, [&gates](std::size_t, Rng& rng) {
    return gates[rng.next_below(gates.size())];
  });
}

InjectionResult inject_gate(const Netlist& nl, GateId gate,
                            const InjectionConfig& config) {
  if (gate >= nl.gate_count()) throw Error("inject_gate: gate out of range");
  if (netlist::fanin_count(nl.gate(gate).kind) == 0) {
    throw Error("inject_gate: target must be a logic gate");
  }
  nl.validate();
  const Topology topo(nl);
  return run_campaign(nl, topo, config,
                      [gate](std::size_t, Rng&) { return gate; });
}

std::vector<GateSensitivity> inject_all_gates(const Netlist& nl,
                                              const InjectionConfig& config) {
  validate_config(config);
  nl.validate();
  const Topology topo(nl);
  const auto& gates = topo.logic_gates();
  if (gates.empty()) throw Error("inject_all_gates: netlist has no logic");

  auto chunks = parallel::partition_trials(config.trials, config.seed);
  // Per-chunk, per-gate propagation counts; merged in chunk order below.
  std::vector<std::vector<std::size_t>> chunk_counts(
      chunks.size(), std::vector<std::size_t>(gates.size(), 0));
  parallel::parallel_for(chunks.size(), [&](std::size_t ci) {
    const parallel::TrialChunk& chunk = chunks[ci];
    FaultEngine engine(nl, topo);
    Rng rng(chunk.seed);
    std::vector<std::uint64_t> inputs(nl.input_bits().size());
    std::vector<std::size_t>& counts = chunk_counts[ci];
    std::size_t passes = chunk.trials / parallel::kLanes;
    for (std::size_t pass = 0; pass < passes; ++pass) {
      for (auto& w : inputs) w = rng.next_u64();
      engine.set_inputs(inputs);  // one golden eval shared by ALL victims
      for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        std::uint64_t corrupted =
            engine.inject(netlist::Fault{gates[gi], ~0ULL});
        counts[gi] +=
            static_cast<std::size_t>(__builtin_popcountll(corrupted));
      }
    }
  });

  std::size_t trials = 0;
  for (const auto& chunk : chunks) trials += chunk.trials;
  std::vector<GateSensitivity> out(gates.size());
  for (std::size_t gi = 0; gi < gates.size(); ++gi) {
    std::size_t propagated = 0;
    for (const auto& counts : chunk_counts) propagated += counts[gi];
    out[gi].gate = gates[gi];
    out[gi].result = finalize(trials, propagated, config);
  }
  return out;
}

InjectionResult inject_campaign_reference(const Netlist& nl,
                                          const InjectionConfig& config) {
  validate_config(config);
  nl.validate();
  const Topology topo(nl);
  const auto& gates = topo.logic_gates();
  if (gates.empty()) {
    throw Error("inject_campaign_reference: netlist has no logic");
  }

  auto chunks = parallel::partition_trials(config.trials, config.seed);
  std::vector<std::size_t> chunk_propagated(chunks.size(), 0);
  parallel::parallel_for(chunks.size(), [&](std::size_t ci) {
    const parallel::TrialChunk& chunk = chunks[ci];
    Simulator sim(nl);
    Rng rng(chunk.seed);
    std::vector<std::uint64_t> inputs(nl.input_bits().size());
    std::vector<std::uint64_t> golden, faulty;
    std::size_t passes = chunk.trials / parallel::kLanes;
    std::size_t propagated = 0;
    for (std::size_t pass = 0; pass < passes; ++pass) {
      for (auto& w : inputs) w = rng.next_u64();

      GateId victim = gates[rng.next_below(gates.size())];
      sim.eval(inputs);
      sim.pack_outputs(golden);
      sim.eval(inputs, netlist::Fault{victim, ~0ULL});
      sim.pack_outputs(faulty);

      std::uint64_t corrupted = 0;
      for (std::size_t i = 0; i < golden.size(); ++i) {
        corrupted |= golden[i] ^ faulty[i];
      }
      propagated += static_cast<std::size_t>(__builtin_popcountll(corrupted));
    }
    chunk_propagated[ci] = propagated;
  });

  std::size_t trials = 0;
  std::size_t propagated = 0;
  for (const auto& chunk : chunks) trials += chunk.trials;
  for (std::size_t p : chunk_propagated) propagated += p;
  return finalize(trials, propagated, config);
}

}  // namespace rchls::ser

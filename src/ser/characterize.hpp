// Component characterization: turns arithmetic circuits into
// (area, delay, reliability) triples -- the front half of the paper's flow
// (Section 4, Table 1).
//
// Two paths are provided:
//
//  * paper_characterization(): the analytic chain anchored on the paper's
//    published Qcritical values; reproduces Table 1 exactly (bench
//    repro_table1).
//  * characterize_components(): the fully simulated path -- generate the
//    five netlists, measure area/depth structurally, estimate relative SER
//    by Monte-Carlo fault injection, and anchor reliabilities on the
//    ripple-carry adder. This is the substitute for the MAX/HSPICE flow.
#pragma once

#include <string>
#include <vector>

#include "ser/fault_injection.hpp"
#include "ser/model.hpp"

namespace rchls::ser {

/// Operation class a component implements.
enum class ComponentClass { kAdder, kMultiplier };

struct ComponentCharacterization {
  std::string name;
  ComponentClass cls = ComponentClass::kAdder;
  /// Area in the paper's normalized units (ripple-carry adder == 1).
  double area_units = 0.0;
  /// Latency in clock cycles.
  int delay_cycles = 0;
  /// Mission reliability per Figure 2's chain.
  double reliability = 0.0;
  /// Critical charge used (paper path) or implied (simulated path), in C.
  double qcritical = 0.0;
  /// Raw gate count of the generated netlist (simulated path only).
  std::size_t gate_count = 0;
  /// Logical sensitivity from fault injection (simulated path only).
  double logical_sensitivity = 0.0;
};

/// The five Table 1 components via the paper's published/derived Qcritical
/// values and the calibrated SoftErrorModel. Order: adder 1..3,
/// multiplier 1..2.
std::vector<ComponentCharacterization> paper_characterization();

struct CharacterizeConfig {
  /// Bit width of the generated arithmetic units.
  int width = 16;
  InjectionConfig injection;
};

/// Full simulated characterization of the five components at the given
/// width. Area is normalized so the ripple-carry adder is 1 unit; delay in
/// cycles is the circuit depth divided by the clock period implied by the
/// deepest single-cycle component; reliability anchors the ripple-carry
/// adder at 0.999 and scales the others by their estimated relative SER
/// (gate count x logical sensitivity).
std::vector<ComponentCharacterization> characterize_components(
    const CharacterizeConfig& config);

/// Per-node sensitivity map of one netlist -- the paper's "each of the
/// nodes in the netlist can be characterized individually" -- computed in
/// a single sweep on the cone-limited FaultEngine (every gate shares each
/// input batch's golden evaluation, see ser::inject_all_gates). Returns
/// all logic gates sorted by descending logical sensitivity, ties broken
/// by ascending gate id; deterministic at every worker count.
std::vector<GateSensitivity> rank_gate_sensitivities(
    const netlist::Netlist& nl, const InjectionConfig& config);

}  // namespace rchls::ser

// Monte-Carlo single-event-transient (SET) injection on gate-level
// netlists.
//
// This is our executable substitute for the paper's MAX-layout + HSPICE
// per-node characterization ([8]'s methodology): strike a random gate under
// a random input vector, propagate the flipped value through the logic, and
// observe whether any primary output changes. The observed corruption
// probability captures *logical masking*; *electrical* and
// *latching-window* masking -- analog effects a logic simulator cannot see
// -- enter as analytic derating factors, as is standard practice.
//
// Campaigns run on the cone-limited incremental FaultEngine
// (netlist/fault_engine.hpp): one golden evaluation per 64-lane input
// batch, then per-strike resimulation of only the victim's fanout cone.
// Results are bit-identical to the brute-force double-full-simulation
// oracle (inject_campaign_reference), which is kept for differential
// testing and benchmarking.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace rchls::ser {

struct InjectionConfig {
  /// Total number of injected strikes (rounded up to a multiple of 64;
  /// the simulator evaluates 64 input patterns per pass).
  std::size_t trials = 64 * 256;
  /// Probability that a strike of sufficient charge survives electrical
  /// attenuation on its way to a latch.
  double electrical_derating = 0.4;
  /// Probability that a surviving pulse overlaps a latching window.
  double latching_window_derating = 0.2;
  std::uint64_t seed = 1;
};

struct InjectionResult {
  std::size_t trials = 0;
  /// Strikes whose flip reached at least one primary output (i.e. were not
  /// logically masked).
  std::size_t propagated = 0;
  /// propagated / trials.
  double logical_sensitivity = 0.0;
  /// logical_sensitivity * electrical * latching-window deratings;
  /// proportional to the circuit's SER once multiplied by flux, area and
  /// the per-node charge term.
  double susceptibility = 0.0;
  /// 95% half-width of the logical_sensitivity estimate, from the Wilson
  /// score interval (measured around its center, (p + z^2/2n) / (1 +
  /// z^2/n)). Unlike the normal approximation this stays positive and
  /// honest at p near 0 or 1 -- exactly the small-p regime that redundant
  /// (voted) components produce -- at the cost of no longer being centered
  /// on the point estimate itself.
  double half_width_95 = 0.0;
};

/// Runs a whole-circuit campaign: each trial picks a uniformly random logic
/// gate and a fresh random input vector.
InjectionResult inject_campaign(const netlist::Netlist& nl,
                                const InjectionConfig& config);

/// Per-gate campaign: strikes only `gate` under `trials` random vectors.
/// Used to characterize individual nodes, mirroring the paper's "each of
/// the nodes in the netlist can be characterized individually".
InjectionResult inject_gate(const netlist::Netlist& nl, netlist::GateId gate,
                            const InjectionConfig& config);

/// One logic gate's campaign outcome within inject_all_gates.
struct GateSensitivity {
  netlist::GateId gate = 0;
  InjectionResult result;
};

/// Characterizes EVERY logic gate at once: each 64-lane pass draws one
/// input batch, evaluates the golden values a single time, and injects
/// every gate against that shared golden -- collapsing the per-node
/// characterization loop from gate_count full campaigns into one sweep.
/// Each gate sees `config.trials` strikes (the same input batches for
/// all gates). Results are in ascending gate-id order and bit-identical
/// at every worker count.
std::vector<GateSensitivity> inject_all_gates(const netlist::Netlist& nl,
                                              const InjectionConfig& config);

/// Brute-force oracle for inject_campaign: two full-netlist bit-parallel
/// simulations per 64-lane pass plus an output comparison loop (the
/// pre-FaultEngine implementation). Bit-identical to inject_campaign by
/// construction; kept as the differential-testing oracle and the benchmark
/// baseline for the cone-limited engine.
InjectionResult inject_campaign_reference(const netlist::Netlist& nl,
                                          const InjectionConfig& config);

}  // namespace rchls::ser

// The soft-error reliability chain of paper Section 4 (Figure 2):
//
//   (1)  Qcritical --> SER         SER ∝ Nflux * CS * exp(-Qcritical / Qs)
//   (2)  SER       --> failure rate λ     (every soft error is a failure)
//   (3)  λ         --> reliability R(t) = exp(-λ t)
//
// Within one process technology, Nflux, CS and Qs cancel between two
// circuits, so SER2 = SER1 * exp((Qc1 - Qc2) / Qs) and therefore
// R2 = R1 ^ exp((Qc1 - Qc2) / Qs). The paper anchors the chain at
// R(ripple-carry adder) = 0.999; we do the same, and recover the anchor's
// charge-collection efficiency Qs by calibrating on the published
// ripple-carry / Brent-Kung pair.
#pragma once

namespace rchls::ser {

/// Critical charges reported in the paper (Section 4), in Coulomb.
/// The multiplier values are back-derived from their Table 1 reliabilities
/// under the calibrated Qs (the paper publishes adder Qcriticals only).
struct PaperCharges {
  static constexpr double kRippleCarry = 59.460e-21;
  static constexpr double kBrentKung = 29.701e-21;
  static constexpr double kKoggeStone = 37.291e-21;
};

/// Anchor reliability the paper assigns to the ripple-carry adder.
inline constexpr double kAnchorReliability = 0.999;

/// SER ratio of a circuit with critical charge `qc` relative to a reference
/// circuit with critical charge `qc_ref` in the same technology:
/// exp((qc_ref - qc) / qs). Lower critical charge => higher SER.
double relative_ser(double qc_ref, double qc, double qs);

/// Absolute SER per the Hazucha-Svensson expression,
/// k * nflux * cs * exp(-qc / qs). `k` defaults to 1 (the proportionality
/// constant is irrelevant once the chain is anchored).
double absolute_ser(double nflux, double cs, double qc, double qs,
                    double k = 1.0);

/// Step 2+3 of Figure 2 for an anchored chain: given the reference
/// reliability `r_ref` (= exp(-λ_ref t)) and a SER ratio `ser_ratio`
/// (= λ / λ_ref), the component reliability over the same mission time is
/// exp(-λ t) = r_ref ^ ser_ratio.
double reliability_from_ser_ratio(double r_ref, double ser_ratio);

/// λt recovered from a reliability value: -ln(R).
double failure_exposure(double reliability);

/// Solves Qs from two (Qcritical, reliability) anchor points:
/// Qs = (qc1 - qc2) / ln( ln(r2) / ln(r1) ). Throws Error on degenerate
/// inputs (equal charges, reliabilities outside (0,1), or equal exposures).
double calibrate_qs(double qc1, double r1, double qc2, double r2);

/// An anchored per-technology soft-error model.
class SoftErrorModel {
 public:
  /// `qc_ref` / `r_ref`: anchor component; `qs`: charge-collection
  /// efficiency of the technology.
  SoftErrorModel(double qc_ref, double r_ref, double qs);

  /// Model calibrated from the paper's published numbers: anchored at the
  /// ripple-carry adder (Qc = 59.460e-21 C, R = 0.999), Qs solved from the
  /// Brent-Kung point (Qc = 29.701e-21 C, R = 0.969).
  static SoftErrorModel paper_calibrated();

  double qs() const { return qs_; }
  double qc_ref() const { return qc_ref_; }
  double r_ref() const { return r_ref_; }

  /// Reliability of a component with critical charge `qc`.
  double reliability(double qc) const;

  /// Inverse map: critical charge a component must have to achieve
  /// reliability `r` under this model.
  double critical_charge_for(double r) const;

 private:
  double qc_ref_;
  double r_ref_;
  double qs_;
};

}  // namespace rchls::ser

#include "ser/model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rchls::ser {

namespace {

void check_reliability(double r, const char* who) {
  if (!(r > 0.0) || !(r < 1.0)) {
    throw Error(std::string(who) + ": reliability must lie in (0, 1)");
  }
}

}  // namespace

double relative_ser(double qc_ref, double qc, double qs) {
  if (!(qs > 0.0)) throw Error("relative_ser: qs must be positive");
  return std::exp((qc_ref - qc) / qs);
}

double absolute_ser(double nflux, double cs, double qc, double qs, double k) {
  if (!(qs > 0.0)) throw Error("absolute_ser: qs must be positive");
  if (nflux < 0.0 || cs < 0.0 || k < 0.0) {
    throw Error("absolute_ser: flux, cross-section and k must be >= 0");
  }
  return k * nflux * cs * std::exp(-qc / qs);
}

double reliability_from_ser_ratio(double r_ref, double ser_ratio) {
  check_reliability(r_ref, "reliability_from_ser_ratio");
  if (!(ser_ratio >= 0.0)) {
    throw Error("reliability_from_ser_ratio: ratio must be >= 0");
  }
  return std::pow(r_ref, ser_ratio);
}

double failure_exposure(double reliability) {
  check_reliability(reliability, "failure_exposure");
  return -std::log(reliability);
}

double calibrate_qs(double qc1, double r1, double qc2, double r2) {
  check_reliability(r1, "calibrate_qs");
  check_reliability(r2, "calibrate_qs");
  if (qc1 == qc2) throw Error("calibrate_qs: anchor charges must differ");
  double ratio = std::log(r2) / std::log(r1);  // λ2/λ1
  if (!(ratio > 0.0) || ratio == 1.0) {
    throw Error("calibrate_qs: anchor reliabilities must differ");
  }
  return (qc1 - qc2) / std::log(ratio);
}

SoftErrorModel::SoftErrorModel(double qc_ref, double r_ref, double qs)
    : qc_ref_(qc_ref), r_ref_(r_ref), qs_(qs) {
  check_reliability(r_ref, "SoftErrorModel");
  if (!(qs > 0.0)) throw Error("SoftErrorModel: qs must be positive");
  if (!(qc_ref > 0.0)) throw Error("SoftErrorModel: qc_ref must be positive");
}

SoftErrorModel SoftErrorModel::paper_calibrated() {
  double qs = calibrate_qs(PaperCharges::kRippleCarry, kAnchorReliability,
                           PaperCharges::kBrentKung, 0.969);
  return SoftErrorModel(PaperCharges::kRippleCarry, kAnchorReliability, qs);
}

double SoftErrorModel::reliability(double qc) const {
  if (!(qc > 0.0)) throw Error("reliability: qc must be positive");
  return reliability_from_ser_ratio(r_ref_, relative_ser(qc_ref_, qc, qs_));
}

double SoftErrorModel::critical_charge_for(double r) const {
  check_reliability(r, "critical_charge_for");
  // r = r_ref ^ exp((qc_ref - qc)/qs)  =>
  // qc = qc_ref - qs * ln( ln(r) / ln(r_ref) ).
  double ratio = std::log(r) / std::log(r_ref_);
  return qc_ref_ - qs_ * std::log(ratio);
}

}  // namespace rchls::ser

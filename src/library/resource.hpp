// The reliability-characterized resource library (paper Section 4,
// Table 1): several versions per resource class, each with its own area,
// delay and reliability. The synthesis engines (src/hls) pick versions per
// operation from this library.
//
// Units throughout: area in the paper's normalized units (ripple-carry
// adder == 1), delay in whole clock cycles, reliability as mission
// reliability in (0, 1]. Libraries are plain value types -- cheap to
// copy, safe to share read-only across worker threads -- and every query
// below is deterministic: ties are broken by documented total orders,
// never by pointer or hash order. Failures throw rchls::Error.
//
// Libraries can also be written as text ("resource <name> <class> <area>
// <delay> <reliability>" lines plus optional "timing <version> <pin>
// <rise> <fall> <slope>" arcs, see library/io.hpp) and embedded in
// scenario files (docs/scenario-format.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace rchls::library {

/// Classes of functional units. Following the paper, additive operations
/// (add/sub/compare) run on adder-class units, multiplications on
/// multiplier-class units.
enum class ResourceClass : std::uint8_t { kAdder, kMultiplier };

/// "adder" / "multiplier" (the spelling library/io.hpp parses back).
const char* to_string(ResourceClass cls);

/// The resource class that executes a DFG operation.
ResourceClass class_of(dfg::OpType op);

/// Index of a version within a ResourceLibrary: the 0-based insertion
/// order of add() calls (file order for parsed libraries).
using VersionId = std::uint32_t;

/// One NLDM-flavored timing arc through an input pin of a version's
/// gates: intrinsic rise/fall delay plus a load-dependent slope. The
/// sta::TimingEngine evaluates a gate instanced from the version as
///   delay(pin, edge) = intrinsic(pin, edge) + slope(pin) * fanout
/// in the same abstract delay units for every library (docs/timing.md).
/// Pins name primitive-gate fanins: "a" is fanin0, "b" is fanin1.
struct PinTiming {
  std::string pin;     ///< "a" (fanin0) or "b" (fanin1)
  double rise = 0.0;   ///< intrinsic delay to an output rise (>= 0)
  double fall = 0.0;   ///< intrinsic delay to an output fall (>= 0)
  double slope = 0.0;  ///< extra delay per fanout load (>= 0)
};

/// One implementation (version) of a resource class.
struct ResourceVersion {
  std::string name;
  ResourceClass cls = ResourceClass::kAdder;
  double area = 0.0;      ///< normalized area units (Table 1 column 2)
  int delay = 1;          ///< clock cycles (Table 1 column 3)
  double reliability = 0; ///< mission reliability (Table 1 column 4)
  /// Optional timing model, one arc per characterized pin (insertion
  /// order; at most one arc per pin). Empty = untimed: STA falls back
  /// to the implicit unit arc {rise 1, fall 1, slope 0}.
  std::vector<PinTiming> timing;
};

class ResourceLibrary {
 public:
  /// Adds a version and returns its id. Throws Error unless name is
  /// non-empty and unique, area > 0, delay >= 1, reliability lies in
  /// (0, 1] and every attached timing arc passes the add_timing checks.
  VersionId add(ResourceVersion v);

  /// Attaches a timing arc to an existing version. Throws Error for an
  /// out-of-range id, a pin other than "a"/"b", a negative rise, fall
  /// or slope, or a pin the version already characterizes.
  void add_timing(VersionId id, PinTiming arc);

  /// The version's arc for `pin`, or nullptr when uncharacterized
  /// (callers substitute the implicit unit arc).
  const PinTiming* timing_of(VersionId id, const std::string& pin) const;

  std::size_t size() const { return versions_.size(); }
  /// Throws Error when `id` is out of range.
  const ResourceVersion& version(VersionId id) const;
  const std::vector<ResourceVersion>& versions() const { return versions_; }

  /// All versions of a class, in insertion order. Throws Error if the
  /// class has none (an unsynthesizable library).
  std::vector<VersionId> versions_of(ResourceClass cls) const;
  bool has_class(ResourceClass cls) const;

  /// The version the paper's initial solution allocates: maximum
  /// reliability; ties broken by smaller area, then smaller delay.
  /// Throws Error if the class has no versions.
  VersionId most_reliable(ResourceClass cls) const;

  /// Minimum delay; ties broken by higher reliability, then smaller area.
  /// Throws Error if the class has no versions.
  VersionId fastest(ResourceClass cls) const;

  /// Versions of the same class strictly faster than `current`
  /// (t_r > t_r'), sorted by reliability descending (the reliability-
  /// centric choice), ties by smaller area. May be empty; throws Error
  /// only for an out-of-range `current`.
  std::vector<VersionId> faster_versions(VersionId current) const;

  /// Versions of the same class strictly smaller than `current`
  /// (a_r > a_r') and not slower (t_r >= t_r'), per Fig. 6 line 26;
  /// sorted by reliability descending, ties by smaller area. May be
  /// empty; throws Error only for an out-of-range `current`.
  std::vector<VersionId> smaller_versions(VersionId current) const;

  /// Lookup by version name; throws Error if absent.
  VersionId find(const std::string& name) const;

  /// Throws ValidationError when the library is empty (nothing to
  /// synthesize with). Name uniqueness and value ranges are enforced by
  /// add() itself, so a non-empty library is always well-formed.
  void validate() const;

 private:
  std::vector<ResourceVersion> versions_;
};

/// The paper's Table 1 library:
///   adder_1  ripple-carry   area 1, delay 2, R 0.999
///   adder_2  Brent-Kung     area 2, delay 1, R 0.969
///   adder_3  Kogge-Stone    area 4, delay 1, R 0.987
///   mult_1   carry-save     area 2, delay 2, R 0.999
///   mult_2   leapfrog       area 4, delay 1, R 0.969
ResourceLibrary paper_library();

/// Per-node delay vector (cycles, indexed by NodeId) for a graph where
/// every node uses the given version of its class (used by schedulers
/// and the baseline). Throws Error for out-of-range version ids or when
/// a version's class does not match its parameter (adder_version must
/// be adder-class, mult_version multiplier-class).
std::vector<int> uniform_delays(const dfg::Graph& g,
                                const ResourceLibrary& lib,
                                VersionId adder_version,
                                VersionId mult_version);

}  // namespace rchls::library

// Text serialization for resource libraries -- the declarative counterpart
// of library::paper_library(), so experiments can supply their own
// characterized component sets without writing C++.
//
// Format (one directive per line, '#' starts a comment):
//
//   library  <name>                                    # optional, once
//   resource <name> <class> <area> <delay> <reliability>
//   timing   <version> <pin> <rise> <fall> <slope>     # optional, per pin
//
// where <class> is `adder` or `multiplier` (alias `mult`), <area> is in
// the paper's normalized units (ripple-carry adder == 1, must be > 0),
// <delay> is in whole clock cycles (>= 1), and <reliability> is the
// mission reliability in (0, 1]. Version ids are assigned in file order,
// matching ResourceLibrary::add.
//
// `timing` lines are the optional NLDM-flavored per-pin timing model
// (library/resource.hpp PinTiming, consumed by src/sta): <version> names
// an already-declared resource, <pin> is `a` (fanin0) or `b` (fanin1),
// and <rise>/<fall>/<slope> are non-negative delays in abstract units
// (docs/timing.md). Libraries without timing lines are untimed and
// re-encode byte-identically through to_text -- the directive is fully
// backward compatible.
//
// See docs/scenario-format.md for how scenario files embed or include
// libraries.
#pragma once

#include <iosfwd>
#include <string>

#include "library/resource.hpp"

namespace rchls::library {

/// Parses the text format. Throws ParseError carrying "line <n>:" for
/// malformed directives, out-of-range values, or duplicate names; the
/// returned library always passes ResourceLibrary::validate().
ResourceLibrary parse(std::istream& in);
ResourceLibrary parse_string(const std::string& text);

/// Writes the text format (round-trips through parse() with identical
/// version ids; doubles keep full precision).
std::string to_text(const ResourceLibrary& lib);

/// Parses "adder" / "multiplier" / "mult"; throws ParseError otherwise.
ResourceClass class_from_string(const std::string& s);

/// Parses one tokenized "resource <name> <class> <area> <delay>
/// <reliability>" directive -- the single implementation shared by
/// library files and scenario files. Throws ParseError without position
/// information (callers prepend their own "<source>:<line>:" context) on
/// a wrong token count or malformed class/number tokens; range
/// validation happens in ResourceLibrary::add.
ResourceVersion parse_resource_tokens(const std::vector<std::string>& tokens);

/// Parses one tokenized "timing <version> <pin> <rise> <fall> <slope>"
/// directive and attaches the arc to `lib` -- shared by library files
/// and scenario files, like parse_resource_tokens. Throws ParseError
/// (without position information) on a wrong token count or malformed
/// numbers, and Error for an unknown version name, bad pin, negative
/// values or a duplicate pin arc.
void apply_timing_tokens(ResourceLibrary& lib,
                         const std::vector<std::string>& tokens);

}  // namespace rchls::library

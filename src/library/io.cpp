#include "library/io.hpp"

#include <charconv>
#include <istream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rchls::library {

namespace {

double to_double(const std::string& tok, const char* what) {
  auto v = try_parse_double(tok);
  if (!v) {
    throw ParseError(std::string(what) + " is not a number: '" + tok + "'");
  }
  return *v;
}

int to_int(const std::string& tok, const char* what) {
  auto v = try_parse_int(tok);
  if (!v) {
    throw ParseError(std::string(what) + " is not an integer: '" + tok +
                     "'");
  }
  return *v;
}

}  // namespace

ResourceClass class_from_string(const std::string& s) {
  if (s == "adder") return ResourceClass::kAdder;
  if (s == "multiplier" || s == "mult") return ResourceClass::kMultiplier;
  throw ParseError("unknown resource class '" + s +
                   "' (expected adder or multiplier)");
}

ResourceVersion parse_resource_tokens(
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 6 || tokens[0] != "resource") {
    throw ParseError(
        "expected: resource <name> <class> <area> <delay> <reliability>");
  }
  ResourceVersion v;
  v.name = tokens[1];
  v.cls = class_from_string(tokens[2]);
  v.area = to_double(tokens[3], "area");
  v.delay = to_int(tokens[4], "delay");
  v.reliability = to_double(tokens[5], "reliability");
  return v;
}

void apply_timing_tokens(ResourceLibrary& lib,
                         const std::vector<std::string>& tokens) {
  if (tokens.size() != 6 || tokens[0] != "timing") {
    throw ParseError(
        "expected: timing <version> <pin> <rise> <fall> <slope>");
  }
  PinTiming arc;
  arc.pin = tokens[2];
  arc.rise = to_double(tokens[3], "rise");
  arc.fall = to_double(tokens[4], "fall");
  arc.slope = to_double(tokens[5], "slope");
  // find() rejects unknown version names; add_timing the rest.
  lib.add_timing(lib.find(tokens[1]), std::move(arc));
}

ResourceLibrary parse(std::istream& in) {
  ResourceLibrary lib;
  bool named = false;
  std::string line;
  int lineno = 0;
  auto fail = [&lineno](const std::string& msg) {
    throw ParseError("line " + std::to_string(lineno) + ": " + msg);
  };

  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    auto tokens = split_ws(line);
    if (tokens.empty()) continue;

    const std::string& directive = tokens[0];
    if (directive == "library") {
      if (tokens.size() != 2) fail("expected: library <name>");
      if (named) fail("duplicate library directive");
      named = true;
    } else if (directive == "resource") {
      try {
        // add() rejects duplicate names and out-of-range values.
        lib.add(parse_resource_tokens(tokens));
      } catch (const Error& e) {
        fail(e.what());
      }
    } else if (directive == "timing") {
      try {
        apply_timing_tokens(lib, tokens);
      } catch (const Error& e) {
        fail(e.what());
      }
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }
  return lib;
}

ResourceLibrary parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

std::string to_text(const ResourceLibrary& lib) {
  std::ostringstream os;
  for (const auto& v : lib.versions()) {
    os << "resource " << v.name << " " << to_string(v.cls) << " "
       << format_shortest(v.area) << " " << v.delay << " "
       << format_shortest(v.reliability) << "\n";
    // Timing arcs follow their resource line in insertion order, so an
    // untimed library's text is byte-identical to the pre-timing format.
    for (const auto& arc : v.timing) {
      os << "timing " << v.name << " " << arc.pin << " "
         << format_shortest(arc.rise) << " " << format_shortest(arc.fall)
         << " " << format_shortest(arc.slope) << "\n";
    }
  }
  return os.str();
}

}  // namespace rchls::library

#include "library/resource.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rchls::library {

const char* to_string(ResourceClass cls) {
  switch (cls) {
    case ResourceClass::kAdder: return "adder";
    case ResourceClass::kMultiplier: return "multiplier";
  }
  return "?";
}

ResourceClass class_of(dfg::OpType op) {
  switch (op) {
    case dfg::OpType::kMul:
      return ResourceClass::kMultiplier;
    case dfg::OpType::kAdd:
    case dfg::OpType::kSub:
    case dfg::OpType::kLt:
      return ResourceClass::kAdder;
  }
  throw Error("class_of: unknown op type");
}

namespace {

void check_timing_arc(const PinTiming& arc,
                      const std::vector<PinTiming>& existing,
                      std::size_t existing_count) {
  if (arc.pin != "a" && arc.pin != "b") {
    throw Error("timing: unknown pin '" + arc.pin +
                "' (expected a or b)");
  }
  if (arc.rise < 0.0 || arc.fall < 0.0 || arc.slope < 0.0) {
    throw Error("timing: rise, fall and slope must be >= 0");
  }
  for (std::size_t i = 0; i < existing_count; ++i) {
    if (existing[i].pin == arc.pin) {
      throw Error("timing: duplicate arc for pin '" + arc.pin + "'");
    }
  }
}

}  // namespace

VersionId ResourceLibrary::add(ResourceVersion v) {
  if (v.name.empty()) throw Error("ResourceLibrary::add: empty name");
  if (!(v.area > 0.0)) throw Error("ResourceLibrary::add: area must be > 0");
  if (v.delay < 1) throw Error("ResourceLibrary::add: delay must be >= 1");
  if (!(v.reliability > 0.0) || !(v.reliability <= 1.0)) {
    throw Error("ResourceLibrary::add: reliability must lie in (0, 1]");
  }
  for (std::size_t i = 0; i < v.timing.size(); ++i) {
    check_timing_arc(v.timing[i], v.timing, i);
  }
  for (const auto& existing : versions_) {
    if (existing.name == v.name) {
      throw Error("ResourceLibrary::add: duplicate name '" + v.name + "'");
    }
  }
  versions_.push_back(std::move(v));
  return static_cast<VersionId>(versions_.size() - 1);
}

void ResourceLibrary::add_timing(VersionId id, PinTiming arc) {
  if (id >= versions_.size()) throw Error("add_timing: id out of range");
  check_timing_arc(arc, versions_[id].timing, versions_[id].timing.size());
  versions_[id].timing.push_back(std::move(arc));
}

const PinTiming* ResourceLibrary::timing_of(VersionId id,
                                            const std::string& pin) const {
  const ResourceVersion& v = version(id);
  for (const auto& arc : v.timing) {
    if (arc.pin == pin) return &arc;
  }
  return nullptr;
}

const ResourceVersion& ResourceLibrary::version(VersionId id) const {
  if (id >= versions_.size()) throw Error("version: id out of range");
  return versions_[id];
}

std::vector<VersionId> ResourceLibrary::versions_of(ResourceClass cls) const {
  std::vector<VersionId> out;
  for (VersionId id = 0; id < versions_.size(); ++id) {
    if (versions_[id].cls == cls) out.push_back(id);
  }
  if (out.empty()) {
    throw Error(std::string("versions_of: library has no ") +
                to_string(cls) + " versions");
  }
  return out;
}

bool ResourceLibrary::has_class(ResourceClass cls) const {
  for (const auto& v : versions_) {
    if (v.cls == cls) return true;
  }
  return false;
}

VersionId ResourceLibrary::most_reliable(ResourceClass cls) const {
  auto candidates = versions_of(cls);
  return *std::min_element(
      candidates.begin(), candidates.end(), [this](VersionId a, VersionId b) {
        const auto& va = versions_[a];
        const auto& vb = versions_[b];
        if (va.reliability != vb.reliability) {
          return va.reliability > vb.reliability;
        }
        if (va.area != vb.area) return va.area < vb.area;
        return va.delay < vb.delay;
      });
}

VersionId ResourceLibrary::fastest(ResourceClass cls) const {
  auto candidates = versions_of(cls);
  return *std::min_element(
      candidates.begin(), candidates.end(), [this](VersionId a, VersionId b) {
        const auto& va = versions_[a];
        const auto& vb = versions_[b];
        if (va.delay != vb.delay) return va.delay < vb.delay;
        if (va.reliability != vb.reliability) {
          return va.reliability > vb.reliability;
        }
        return va.area < vb.area;
      });
}

namespace {

void sort_by_reliability(std::vector<VersionId>& ids,
                         const std::vector<ResourceVersion>& versions) {
  std::sort(ids.begin(), ids.end(), [&versions](VersionId a, VersionId b) {
    if (versions[a].reliability != versions[b].reliability) {
      return versions[a].reliability > versions[b].reliability;
    }
    if (versions[a].area != versions[b].area) {
      return versions[a].area < versions[b].area;
    }
    return a < b;
  });
}

}  // namespace

std::vector<VersionId> ResourceLibrary::faster_versions(
    VersionId current) const {
  const auto& cur = version(current);
  std::vector<VersionId> out;
  for (VersionId id = 0; id < versions_.size(); ++id) {
    if (id == current) continue;
    const auto& v = versions_[id];
    if (v.cls == cur.cls && v.delay < cur.delay) out.push_back(id);
  }
  sort_by_reliability(out, versions_);
  return out;
}

std::vector<VersionId> ResourceLibrary::smaller_versions(
    VersionId current) const {
  const auto& cur = version(current);
  std::vector<VersionId> out;
  for (VersionId id = 0; id < versions_.size(); ++id) {
    if (id == current) continue;
    const auto& v = versions_[id];
    if (v.cls == cur.cls && v.area < cur.area && v.delay <= cur.delay) {
      out.push_back(id);
    }
  }
  sort_by_reliability(out, versions_);
  return out;
}

VersionId ResourceLibrary::find(const std::string& name) const {
  for (VersionId id = 0; id < versions_.size(); ++id) {
    if (versions_[id].name == name) return id;
  }
  throw Error("ResourceLibrary::find: no version named '" + name + "'");
}

void ResourceLibrary::validate() const {
  if (versions_.empty()) throw ValidationError("library is empty");
}

ResourceLibrary paper_library() {
  ResourceLibrary lib;
  lib.add({"adder_1", ResourceClass::kAdder, 1.0, 2, 0.999});
  lib.add({"adder_2", ResourceClass::kAdder, 2.0, 1, 0.969});
  lib.add({"adder_3", ResourceClass::kAdder, 4.0, 1, 0.987});
  lib.add({"mult_1", ResourceClass::kMultiplier, 2.0, 2, 0.999});
  lib.add({"mult_2", ResourceClass::kMultiplier, 4.0, 1, 0.969});
  return lib;
}

std::vector<int> uniform_delays(const dfg::Graph& g,
                                const ResourceLibrary& lib,
                                VersionId adder_version,
                                VersionId mult_version) {
  if (lib.version(adder_version).cls != ResourceClass::kAdder) {
    throw Error("uniform_delays: adder_version is not an adder");
  }
  if (lib.version(mult_version).cls != ResourceClass::kMultiplier) {
    throw Error("uniform_delays: mult_version is not a multiplier");
  }
  std::vector<int> delays(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    VersionId v = class_of(g.node(id).op) == ResourceClass::kAdder
                      ? adder_version
                      : mult_version;
    delays[id] = lib.version(v).delay;
  }
  return delays;
}

}  // namespace rchls::library
